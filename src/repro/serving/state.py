"""Mutable serving-time state: user histories, item statistics, feature cache.

Mirrors what Ele.me's Alibaba Basic Feature Server (ABFS) provides at request
time — the user's profile counters and behaviour sequence — plus the running
shop-level click statistics used by the candidate-item features.  The state
can be taken over from an offline :class:`repro.data.LogGenerator` so the
online experiment continues seamlessly from the end of the training log.

For high-throughput serving the state also hosts a :class:`FeatureCache`: a
versioned store the online encoder uses to avoid re-encoding user behaviour
sequences and static user/item feature tables between requests.  Entries are
keyed by a caller-chosen tuple plus a version number; ``record_clicks`` bumps
the per-user version so stale behaviour snapshots are never served.

When a :class:`repro.serving.replay.ReplayBuffer` is attached
(:meth:`ServingState.attach_replay`), ``record_clicks`` also logs each
exposure with its click labels before applying the feedback — the raw
material of the continuous-refresh lifecycle.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple,
)

import numpy as np

from ..data.log import ImpressionLog, LogGenerator
from ..data.world import RequestContext, SyntheticWorld
from ..features.time_features import TimePeriod

if TYPE_CHECKING:  # pragma: no cover - type-only imports (cycle guards)
    from .durable.journal import Journal
    from .replay import ReplayBuffer

__all__ = ["UserHistoryState", "FeatureCache", "ServingState"]


@dataclass
class UserHistoryState:
    """Behaviour history of one user (parallel lists, oldest first)."""

    items: List[int] = field(default_factory=list)
    categories: List[int] = field(default_factory=list)
    brands: List[int] = field(default_factory=list)
    periods: List[int] = field(default_factory=list)
    hours: List[int] = field(default_factory=list)
    cities: List[int] = field(default_factory=list)
    geohash_prefixes: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def append(self, item: int, category: int, brand: int, period: int, hour: int,
               city: int, geohash_prefix: str) -> None:
        self.items.append(item)
        self.categories.append(category)
        self.brands.append(brand)
        self.periods.append(period)
        self.hours.append(hour)
        self.cities.append(city)
        self.geohash_prefixes.append(geohash_prefix)

    def window_arrays(self, start: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised view of the history tail from ``start``.

        Returns ``(ids, prefixes)`` where ``ids`` is an ``(n, 6)`` int64 array
        with columns (item, category, brand, period, hour, city) and
        ``prefixes`` is the matching array of geohash prefixes.
        """
        ids = np.array(
            [
                self.items[start:],
                self.categories[start:],
                self.brands[start:],
                self.periods[start:],
                self.hours[start:],
                self.cities[start:],
            ],
            dtype=np.int64,
        ).T
        prefixes = np.asarray(self.geohash_prefixes[start:], dtype=object)
        return ids, prefixes


class FeatureCache:
    """Versioned feature store shared by the online encoders.

    Each entry is ``key -> (version, value)``.  A lookup with a newer version
    than the stored one rebuilds the value, so writers only have to bump a
    version counter (no explicit invalidation fan-out is needed).
    """

    def __init__(self, enabled: bool = True, max_entries: int = 200_000) -> None:
        self._store: Dict[Hashable, Tuple[int, Any]] = {}
        self._pinned: Dict[Hashable, Any] = {}
        # Frozen per-model-version artefacts (two-tower item tables): like
        # pinned entries they sit outside the eviction budget — evicting one
        # would silently re-freeze the whole candidate universe mid-burst —
        # but unlike pinned entries they are dropped on model hot-swap.
        self._model_tables: Dict[Hashable, Any] = {}
        self.enabled = enabled
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # Guards the entry maps and counters only.  Builders run *outside*
        # the lock: a builder may re-enter ServingState (behaviour snapshots
        # take the state lock), so holding the cache lock across it would
        # order the two locks both ways and deadlock concurrent workers.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._store) + len(self._pinned) + len(self._model_tables)

    def lookup(self, key: Hashable, version: int, builder: Callable[[], Any],
               pinned: bool = False) -> Any:
        """Return the cached value for ``key`` at ``version``, building on miss.

        ``pinned`` entries (static precomputed tables) live outside the
        eviction budget and stay cached even when the cache is disabled —
        disabling only turns off the cross-request reuse of mutable per-user
        features.  Regular entries are bounded by ``max_entries`` with
        oldest-inserted eviction, so month-long simulations cannot grow the
        cache without bound.
        """
        if pinned:
            with self._lock:
                value = self._pinned.get(key)
                if value is not None:
                    self.hits += 1
                    return value
                self.misses += 1
            value = builder()
            with self._lock:
                # Another worker may have built the same static table in the
                # meantime; both values are identical, last insert wins.
                self._pinned[key] = value
            return value
        if not self.enabled:
            with self._lock:
                self.misses += 1
            return builder()
        with self._lock:
            entry = self._store.get(key)
            if entry is not None and entry[0] == version:
                self.hits += 1
                return entry[1]
            self.misses += 1
        value = builder()
        with self._lock:
            if key not in self._store and len(self._store) >= self.max_entries:
                self._store.pop(next(iter(self._store)))
            self._store[key] = (version, value)
        return value

    def lookup_model_table(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Frozen per-model-version artefact, built once, dropped on hot-swap.

        Serves the two-tower item tables: ``key`` must include the owning
        model's ``serving_uid``, so a newly promoted model can never read its
        predecessor's tables even in the window before the swap's
        ``invalidate_volatile`` lands — stale entries are unreachable by
        construction, the invalidation merely reclaims their memory.  Like
        every cache tier, the builder runs outside the lock (it re-enters the
        state through ``item_static_table``); duplicate concurrent builds are
        identical, last insert wins.
        """
        with self._lock:
            value = self._model_tables.get(key)
            if value is not None:
                self.hits += 1
                return value
            self.misses += 1
        value = builder()
        with self._lock:
            self._model_tables[key] = value
        return value

    def invalidate(self, key: Hashable) -> None:
        with self._lock:
            self._store.pop(key, None)
            self._pinned.pop(key, None)
            self._model_tables.pop(key, None)

    def invalidate_volatile(self) -> None:
        """Drop every versioned entry but keep the pinned static tables.

        Called on model hot-swap as a deliberate *policy*, not a correctness
        requirement: cached entries hold encoder output that depends only on
        the schema, but a production feature server cannot assume that of an
        arbitrary model push, so promotions start from a cold volatile cache
        (entries rebuild lazily and cheaply).  The pinned precomputed id
        tables survive — the schema is fingerprint-checked before any swap.
        Frozen model tables are dropped too: they are keyed by model
        identity, so after a swap they are unreachable dead weight.
        """
        with self._lock:
            self._store.clear()
            self._model_tables.clear()

    @property
    def num_pinned(self) -> int:
        return len(self._pinned)

    @property
    def num_volatile(self) -> int:
        return len(self._store)

    @property
    def num_model_tables(self) -> int:
        return len(self._model_tables)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._pinned.clear()
            self._model_tables.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ServingState:
    """All per-user and per-item state the online system reads and writes."""

    def __init__(self, world: SyntheticWorld, geohash_match_prefix: int = 4) -> None:
        self.world = world
        self.geohash_match_prefix = geohash_match_prefix
        self.user_clicks = np.zeros(world.config.num_users, dtype=np.int64)
        self.user_orders = np.zeros(world.config.num_users, dtype=np.int64)
        self.item_clicks = np.zeros(world.config.num_items, dtype=np.int64)
        #: Per-(item, time-period) click counters: the priors behind the
        #: popularity recall channel, so breakfast traffic surfaces breakfast
        #: shops without peeking at ground-truth world internals.
        self.item_period_clicks = np.zeros(
            (world.config.num_items, len(TimePeriod)), dtype=np.int64
        )
        self.histories: Dict[int, UserHistoryState] = {}
        self.features = FeatureCache()
        #: Serialises every state write (``record_clicks``, replay logging)
        #: and the multi-array history reads (``behavior_snapshot``), so
        #: concurrent cluster workers and feedback threads cannot interleave
        #: a half-applied click with a behaviour-window read.  Reentrant:
        #: ``record_clicks`` holds it across the replay encode, which reads
        #: the behaviour snapshot back through the same lock.
        self.lock = threading.RLock()
        # Bumped whenever a user's history or counters change; consumed by the
        # feature cache so per-user entries expire on write.
        self.user_version = np.zeros(world.config.num_users, dtype=np.int64)
        #: Optional impression log feeding the online-learning loop; attach
        #: one with :meth:`attach_replay` to start recording served traffic.
        self.replay: Optional["ReplayBuffer"] = None
        #: Optional durable redo log; attach one with :meth:`attach_journal`
        #: (or :meth:`repro.serving.durable.DurableStateStore.attach`) and
        #: every ``record_clicks`` mutation is journaled before it applies.
        self.journal: Optional["Journal"] = None
        #: Sequence number of the last applied feedback mutation — the
        #: journal high-water mark a snapshot records.  Counted even without
        #: a journal so snapshots of in-memory-only states stay monotonic.
        self.feedback_seq = 0
        #: Recently fed-back request contexts, snapshot-persisted so a
        #: recovered worker can re-warm the behaviour-snapshot cache for the
        #: users that were active when the process died.
        self.recent_contexts: Deque[RequestContext] = deque(maxlen=256)
        #: Replication taps: called as ``listener(sequence, event)`` under
        #: :attr:`lock` after every committed feedback mutation, in the exact
        #: commit order.  The process-worker pool registers one per worker to
        #: stream the single writer's mutations to its replicas.
        self._feedback_listeners: List[Callable[[int, Any], None]] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def from_log_generator(cls, generator: LogGenerator, log: Optional[ImpressionLog] = None
                           ) -> "ServingState":
        """Adopt the end-of-training state of an offline log generator."""
        state = cls(generator.world, geohash_match_prefix=generator.config.geohash_match_prefix)
        state.user_clicks = generator._user_clicks.copy()
        state.user_orders = generator._user_orders.copy()
        for user, history in generator._histories.items():
            adopted = UserHistoryState(
                items=list(history.items),
                categories=list(history.categories),
                brands=list(history.brands),
                periods=list(history.periods),
                hours=list(history.hours),
                cities=list(history.cities),
                geohash_prefixes=list(history.geohash_prefixes),
            )
            state.histories[user] = adopted
        if log is not None:
            labels = log.label.astype(np.int64)
            np.add.at(state.item_clicks, log.item_index, labels)
            np.add.at(
                state.item_period_clicks,
                (log.item_index, log.impression_period()),
                labels,
            )
        return state

    # ------------------------------------------------------------------ #
    def history(self, user_index: int) -> UserHistoryState:
        return self.histories.setdefault(user_index, UserHistoryState())

    def behavior_snapshot(self, context: RequestContext, max_length: int):
        """Current behaviour arrays for one request: raw ids, mask, st-filter mask."""
        ids = np.zeros((max_length, 6), dtype=np.int64)
        mask = np.zeros(max_length, dtype=np.float32)
        st_mask = np.zeros(max_length, dtype=np.float32)
        with self.lock:
            history = self.histories.get(context.user_index)
            if history is None or len(history) == 0:
                return ids, mask, st_mask
            start = max(0, len(history) - max_length)
            count = len(history) - start
            window, prefixes = history.window_arrays(start)
        ids[:count] = window + 1
        mask[:count] = 1.0
        prefix = context.geohash[: self.geohash_match_prefix]
        st_mask[:count] = (
            (window[:, 3] == context.time_period) & (prefixes == prefix)
        ).astype(np.float32)
        return ids, mask, st_mask

    def attach_replay(self, replay: "ReplayBuffer") -> "ReplayBuffer":
        """Start logging every fed-back exposure into ``replay``."""
        self.replay = replay
        return replay

    def attach_journal(self, journal: "Journal") -> "Journal":
        """Start journaling every feedback mutation into ``journal``.

        Prefer :meth:`repro.serving.durable.DurableStateStore.attach`, which
        also aligns sequence numbers with the snapshot high-water mark and
        publishes the genesis snapshot an adopted offline state needs.
        """
        self.journal = journal
        return journal

    def add_feedback_listener(self, listener: Callable[[int, Any], None]) -> None:
        """Stream every committed feedback mutation to ``listener``.

        Called as ``listener(sequence, event)`` while :attr:`lock` is held,
        immediately after the mutation applies — so a listener registered
        under the lock (together with a snapshot of the current state) sees
        exactly the mutations the snapshot does not contain, with no gap and
        no overlap.  Listeners must be fast and must not re-enter the state.
        """
        with self.lock:
            self._feedback_listeners.append(listener)

    def remove_feedback_listener(self, listener: Callable[[int, Any], None]) -> None:
        with self.lock:
            try:
                self._feedback_listeners.remove(listener)
            except ValueError:
                pass

    def record_clicks(self, context: RequestContext, items: np.ndarray, clicks: np.ndarray,
                      order_probability: float = 0.3,
                      rng: Optional[np.random.Generator] = None) -> None:
        """Update user and item state after a served request.

        When a replay buffer is attached the exposure is logged *first*, so
        the stored features are exactly the pre-feedback ones the ranker
        scored — no-click exposures included, since those are the negative
        examples incremental training needs.

        The whole update — journal append, replay logging, history append,
        counter bumps, version bump — happens under :attr:`lock`, so
        concurrent feedback from cluster worker/client threads applies each
        click atomically (pinned by the threaded-burst test in
        ``tests/serving/test_cluster.py``) and journal sequence numbers stay
        dense.  The journal record is the commitment point: order outcomes
        are drawn from ``rng`` *before* the append, so replaying the record
        reproduces ``user_orders`` byte-identically without re-rolling.
        """
        with self.lock:
            rng = rng if rng is not None else np.random.default_rng(0)
            clicks_array = np.asarray(clicks)
            clicked = np.where(clicks_array > 0)[0]
            orders = np.fromiter(
                (rng.random() < order_probability for _ in range(len(clicked))),
                dtype=bool, count=len(clicked),
            )
            event = None
            if self.journal is not None or self._feedback_listeners:
                from .durable.journal import FeedbackEvent  # lazy: cycle guard

                event = FeedbackEvent(
                    context=context,
                    items=np.asarray(items, dtype=np.int64),
                    clicks=clicks_array,
                    orders=orders,
                )
            if self.journal is not None:
                self.feedback_seq = self.journal.append(event)
            else:
                self.feedback_seq += 1
            self.apply_feedback(context, items, clicks_array, orders)
            if event is not None:
                for listener in self._feedback_listeners:
                    listener(self.feedback_seq, event)

    def apply_feedback(self, context: RequestContext, items: np.ndarray,
                       clicks: np.ndarray, orders: np.ndarray) -> None:
        """Apply one feedback mutation's effects — live path and journal replay.

        ``orders`` holds the pre-drawn order outcome per clicked item (click
        order); crash recovery calls this with journaled events, so it must
        stay deterministic given its arguments.  Callers hold :attr:`lock`
        (reentrant) or own the state exclusively, as recovery does.
        """
        with self.lock:
            if self.replay is not None:
                self.replay.log(self, context, items, clicks)
            self.recent_contexts.append(context)
            clicked = np.where(np.asarray(clicks) > 0)[0]
            if len(clicked) == 0:
                return
            history = self.history(context.user_index)
            prefix = context.geohash[: self.geohash_match_prefix]
            for slot, index in enumerate(clicked):
                item = int(items[index])
                history.append(
                    item,
                    int(self.world.item_category[item]),
                    int(self.world.item_brand[item]),
                    context.time_period,
                    context.hour,
                    context.city,
                    prefix,
                )
                self.user_clicks[context.user_index] += 1
                self.item_clicks[item] += 1
                self.item_period_clicks[item, context.time_period] += 1
                if orders[slot]:
                    self.user_orders[context.user_index] += 1
            self.user_version[context.user_index] += 1
