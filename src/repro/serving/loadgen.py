"""Load generator: replay a burst of synthetic-world requests two ways.

This is the measuring stick of the serving engine (the RTP tier of the
paper's Fig. 13 deployment, whose production traffic peaks motivate both the
micro-batching here and Table VI's efficiency comparison).  It samples a
burst of request contexts from the synthetic world, recalls candidates once
(so both engines score the exact same work), then times

* the **per-request loop** — the seed deployment story: every request is
  encoded on its own (flat per-candidate layout, no cross-request feature
  cache) and scored with one model forward pass; and
* the **batched engine** — :class:`repro.serving.batching.BatchScorer`
  packing the burst into micro-batches with the cached, deduplicated
  encoding, one forward pass per micro-batch.

Both passes score the exact same recalled candidates from the same immutable
state, so the per-request score arrays must agree to float precision (the
parity the benchmark pins to 1e-8).

The module also provides ground-truth-labelled evaluation slices
(:func:`sample_labeled_slice` / :func:`auc_on_slice`): fresh traffic whose
click labels are drawn from the world's click model, used by the lifecycle
drift benchmark to compare a frozen model against an incrementally refreshed
one on post-drift traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.world import SyntheticWorld
from ..metrics.auc import auc
from ..models.base import BaseCTRModel
from .batching import BatchScorer, ScoreRequest
from .encoder import OnlineRequestEncoder
from .pipeline import RankStage, RecallStage, ServingPipeline, StageMetrics
from .ranker import Ranker
from .recall import LocationBasedRecall
from .recall.base import RecallStrategy
from .state import ServingState

__all__ = [
    "LoadTestReport",
    "generate_burst",
    "run_load_test",
    "sample_labeled_slice",
    "auc_on_slice",
]


@dataclass
class LoadTestReport:
    """Throughput and parity numbers for one load-test run."""

    num_requests: int
    total_rows: int
    sequential_seconds: float
    batched_seconds: float
    max_abs_score_diff: float
    micro_batches_run: int
    cache_hit_rate: float
    #: Telemetry of the pipeline replay pass (recall + rank stage latencies),
    #: populated by :func:`run_load_test`; ``None`` when the pass was skipped.
    #: Accepts any accumulator — including a cluster-wide
    #: :meth:`repro.serving.pipeline.StageMetrics.merged` combination of
    #: per-worker accumulators, which ``stage_percentiles``/``stage_rows``
    #: then report over the merged latency windows.
    stage_metrics: Optional[StageMetrics] = None
    pipeline_seconds: float = 0.0
    pipeline_window: int = 0

    @property
    def sequential_rps(self) -> float:
        return self.num_requests / max(self.sequential_seconds, 1e-9)

    @property
    def batched_rps(self) -> float:
        return self.num_requests / max(self.batched_seconds, 1e-9)

    @property
    def speedup(self) -> float:
        return self.sequential_seconds / max(self.batched_seconds, 1e-9)

    # ------------------------------------------------------------------ #
    def stage_percentiles(self) -> Dict[str, Dict[str, float]]:
        """Per-stage p50/p95/p99 call latency in milliseconds."""
        if self.stage_metrics is None:
            return {}
        return {
            stage: {
                key: 1e3 * value
                for key, value in self.stage_metrics.latency_percentiles(stage).items()
            }
            for stage in self.stage_metrics.stages()
        }

    def stage_rows(self) -> List[Dict[str, object]]:
        """Rows for the per-stage latency table of the report."""
        return [] if self.stage_metrics is None else self.stage_metrics.rows()

    def rows(self) -> List[Dict[str, object]]:
        """Rows for the benchmark's text table."""
        return [
            {
                "Engine": "per-request loop",
                "Requests": self.num_requests,
                "Rows scored": self.total_rows,
                "Seconds": round(self.sequential_seconds, 3),
                "Requests/sec": round(self.sequential_rps, 1),
            },
            {
                "Engine": f"batched ({self.micro_batches_run} micro-batches)",
                "Requests": self.num_requests,
                "Rows scored": self.total_rows,
                "Seconds": round(self.batched_seconds, 3),
                "Requests/sec": round(self.batched_rps, 1),
            },
        ]

    def summary(self) -> str:
        text = (
            f"speedup {self.speedup:.2f}x, "
            f"score parity max|diff| = {self.max_abs_score_diff:.2e}, "
            f"feature-cache hit rate {self.cache_hit_rate:.1%}"
        )
        percentiles = self.stage_percentiles()
        if percentiles:
            stages = ", ".join(
                f"{stage} p95 {values['p95']:.2f}ms"
                for stage, values in percentiles.items()
            )
            text += (
                f"; pipeline stage latencies over {self.pipeline_window}-request "
                f"windows: {stages}"
            )
        return text


def generate_burst(
    world: SyntheticWorld,
    num_requests: int,
    recall_size: int = 30,
    day: int = 100,
    seed: int = 11,
    recall: Optional[RecallStrategy] = None,
) -> List[ScoreRequest]:
    """Sample a burst of concurrent requests with their recalled candidates.

    ``recall`` is any strategy with the ``recall(context, pool_size=None)``
    interface — by default the seed proximity sampler (so throughput
    benchmarks keep measuring the same retrieval strategy; its draws are now
    per-request deterministic, so pools differ from pre-fix runs), or a
    :class:`repro.serving.recall.MultiChannelRecall` to replay the burst
    through the fused multi-channel stage.
    """
    rng = np.random.default_rng(seed)
    if recall is None:
        recall = LocationBasedRecall(world, pool_size=recall_size, seed=seed + 1)
    return [
        ScoreRequest(context, recall.recall(context, recall_size))
        for context in (
            world.sample_request_context(day, rng) for _ in range(num_requests)
        )
    ]


def run_load_test(
    world: SyntheticWorld,
    model: BaseCTRModel,
    encoder: OnlineRequestEncoder,
    state: ServingState,
    num_requests: int = 1000,
    recall_size: int = 30,
    max_batch_rows: int = 2048,
    day: int = 100,
    seed: int = 11,
    exposure_size: int = 10,
    pipeline_window: int = 64,
    recall: Optional[RecallStrategy] = None,
) -> LoadTestReport:
    """Time the per-request loop against the batched engine on one burst.

    A third pass replays the same contexts through a
    :class:`repro.serving.pipeline.ServingPipeline` (recall → rank) in
    ``pipeline_window``-sized concurrent windows, purely to collect per-stage
    latency telemetry (`StageMetrics`) — per-request deterministic recall
    guarantees the pipeline scores the exact same pools as the two timed
    passes.  Set ``pipeline_window=0`` to skip it.
    """
    if recall is None:
        recall = LocationBasedRecall(world, pool_size=recall_size, seed=seed + 1)
    requests = generate_burst(world, num_requests, recall_size=recall_size,
                              day=day, seed=seed, recall=recall)
    total_rows = int(sum(len(request) for request in requests))

    # Both passes measure from a cold cache; the caller's cache-enabled
    # setting is restored afterwards (the entries themselves are cheap to
    # rebuild lazily).
    was_enabled = state.features.enabled
    try:
        # Per-request loop (the seed serving path): every request re-encodes
        # its own features — flat per-candidate behaviour layout, no
        # cross-request cache — and runs its own forward pass.
        state.features.clear()
        state.features.enabled = False
        start = time.perf_counter()
        sequential_scores = []
        for request in requests:
            batch = encoder.encode(request.context, request.candidates, state)
            for dedup_key in ("behavior_unique", "behavior_mask_unique",
                              "behavior_st_mask_unique", "behavior_row_map"):
                batch.pop(dedup_key, None)
            sequential_scores.append(model.predict(batch))
        sequential_seconds = time.perf_counter() - start

        # Batched engine: cached encoding, one forward per micro-batch.
        state.features.enabled = True
        state.features.clear()
        scorer = BatchScorer(model, encoder, max_batch_rows=max_batch_rows)
        start = time.perf_counter()
        batched_scores = scorer.score_many(requests, state)
        batched_seconds = time.perf_counter() - start
        hit_rate = state.features.hit_rate

        # Telemetry pass: the same burst through the staged pipeline, in
        # concurrent windows, recording per-stage latency and item counts.
        stage_metrics: Optional[StageMetrics] = None
        pipeline_seconds = 0.0
        if pipeline_window > 0:
            stage_metrics = StageMetrics()
            pipeline = ServingPipeline(
                [
                    RecallStage(recall, pool_size=recall_size),
                    RankStage(Ranker(model, encoder, max_batch_rows=max_batch_rows),
                              exposure_size),
                ],
                state,
                metrics=stage_metrics,
                name="loadtest",
            )
            contexts = [request.context for request in requests]
            start = time.perf_counter()
            for begin in range(0, len(contexts), pipeline_window):
                pipeline.run_many(contexts[begin:begin + pipeline_window])
            pipeline_seconds = time.perf_counter() - start
    finally:
        state.features.enabled = was_enabled

    max_diff = 0.0
    for sequential, batched in zip(sequential_scores, batched_scores):
        if len(sequential):
            max_diff = max(max_diff, float(np.max(np.abs(sequential - batched))))

    return LoadTestReport(
        num_requests=num_requests,
        total_rows=total_rows,
        sequential_seconds=sequential_seconds,
        batched_seconds=batched_seconds,
        max_abs_score_diff=max_diff,
        micro_batches_run=scorer.batches_run,
        cache_hit_rate=hit_rate,
        stage_metrics=stage_metrics,
        pipeline_seconds=pipeline_seconds,
        pipeline_window=pipeline_window,
    )


# ---------------------------------------------------------------------- #
# ground-truth-labelled evaluation slices (drift benchmarking)
# ---------------------------------------------------------------------- #
def sample_labeled_slice(
    world: SyntheticWorld,
    num_requests: int,
    recall_size: int = 30,
    day: int = 100,
    seed: int = 211,
) -> Tuple[List[ScoreRequest], List[np.ndarray]]:
    """Sample fresh traffic and draw its click labels from the world.

    The labels come straight from the ground-truth click model *as it stands
    now* — after a :meth:`SyntheticWorld.drift_preferences` call they follow
    the drifted distribution — with no position bias applied, so the slice is
    a counterfactual "what would this user click among the recalled
    candidates" test set shared by every model under comparison.
    """
    rng = np.random.default_rng(seed)
    requests = generate_burst(world, num_requests, recall_size=recall_size,
                              day=day, seed=seed + 1)
    labels: List[np.ndarray] = []
    for request in requests:
        context = request.context
        probabilities = world.click_probabilities(
            context.user_index,
            request.candidates,
            context.hour,
            context.city,
            (context.latitude, context.longitude),
            rng=rng,
        )
        labels.append((rng.random(len(request)) < probabilities).astype(np.float32))
    return requests, labels


def auc_on_slice(
    model: BaseCTRModel,
    encoder: OnlineRequestEncoder,
    state: ServingState,
    requests: Sequence[ScoreRequest],
    labels: Sequence[np.ndarray],
) -> float:
    """AUC of ``model`` on a labelled slice, scored by the batched engine."""
    scorer = BatchScorer(model, encoder)
    scores = scorer.score_many(list(requests), state)
    return auc(np.concatenate(list(labels)), np.concatenate(scores))
