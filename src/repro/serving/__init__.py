"""Online serving simulation: recall, ranking, micro-batching, A/B testing,
and the replay log feeding the continuous-refresh lifecycle."""

from .ab_test import ABTestConfig, ABTestResult, ABTestSimulator
from .batching import BatchScorer, RankedRequest, ScoreRequest
from .encoder import OnlineRequestEncoder
from .loadgen import (
    LoadTestReport,
    auc_on_slice,
    generate_burst,
    run_load_test,
    sample_labeled_slice,
)
from .platform import PersonalizationPlatform, ServedImpression
from .ranker import Ranker
from .recall import (
    EmbeddingANNChannel,
    GeoGridChannel,
    LocationBasedRecall,
    MultiChannelRecall,
    PopularityChannel,
    RecallChannel,
    RecallFusion,
    UserHistoryChannel,
    request_rng,
)
from .replay import LoggedImpression, ReplayBuffer
from .state import FeatureCache, ServingState, UserHistoryState

__all__ = [
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "BatchScorer",
    "RankedRequest",
    "ScoreRequest",
    "OnlineRequestEncoder",
    "LoadTestReport",
    "auc_on_slice",
    "generate_burst",
    "run_load_test",
    "sample_labeled_slice",
    "PersonalizationPlatform",
    "ServedImpression",
    "Ranker",
    "RecallChannel",
    "request_rng",
    "LocationBasedRecall",
    "GeoGridChannel",
    "EmbeddingANNChannel",
    "PopularityChannel",
    "UserHistoryChannel",
    "MultiChannelRecall",
    "RecallFusion",
    "LoggedImpression",
    "ReplayBuffer",
    "FeatureCache",
    "ServingState",
    "UserHistoryState",
]
