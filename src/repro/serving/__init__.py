"""Online serving simulation: recall, ranking, micro-batching, A/B testing."""

from .ab_test import ABTestConfig, ABTestResult, ABTestSimulator
from .batching import BatchScorer, RankedRequest, ScoreRequest
from .encoder import OnlineRequestEncoder
from .loadgen import LoadTestReport, generate_burst, run_load_test
from .platform import PersonalizationPlatform, ServedImpression
from .ranker import Ranker
from .recall import LocationBasedRecall
from .state import FeatureCache, ServingState, UserHistoryState

__all__ = [
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "BatchScorer",
    "RankedRequest",
    "ScoreRequest",
    "OnlineRequestEncoder",
    "LoadTestReport",
    "generate_burst",
    "run_load_test",
    "PersonalizationPlatform",
    "ServedImpression",
    "Ranker",
    "LocationBasedRecall",
    "FeatureCache",
    "ServingState",
    "UserHistoryState",
]
