"""Online serving simulation: recall, ranking, A/B testing."""

from .ab_test import ABTestConfig, ABTestResult, ABTestSimulator
from .encoder import OnlineRequestEncoder
from .platform import PersonalizationPlatform, ServedImpression
from .ranker import Ranker
from .recall import LocationBasedRecall
from .state import ServingState, UserHistoryState

__all__ = [
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "OnlineRequestEncoder",
    "PersonalizationPlatform",
    "ServedImpression",
    "Ranker",
    "LocationBasedRecall",
    "ServingState",
    "UserHistoryState",
]
