"""Online serving simulation: a composable staged pipeline (recall, ranking,
rerank, exposure) with per-stage telemetry and scenario routing, micro-batched
scoring, A/B testing, and the replay log feeding the continuous-refresh
lifecycle."""

from .ab_test import ABTestConfig, ABTestResult, ABTestSimulator
from .batching import BatchScorer, RankedRequest, ScoreRequest
from .encoder import OnlineRequestEncoder
from .loadgen import (
    LoadTestReport,
    auc_on_slice,
    generate_burst,
    run_load_test,
    sample_labeled_slice,
)
from .pipeline import (
    CategoryDiversityRule,
    ExposureLogStage,
    PipelineConfig,
    PipelineStage,
    RankStage,
    RecallStage,
    RerankRule,
    RerankStage,
    ScenarioRouter,
    ServeRequest,
    ServeResponse,
    ServingPipeline,
    StageMetrics,
    StageStats,
    build_pipeline,
)
from .platform import PersonalizationPlatform, ServedImpression
from .ranker import Ranker
from .recall import (
    EmbeddingANNChannel,
    GeoGridChannel,
    LocationBasedRecall,
    MultiChannelRecall,
    PopularityChannel,
    RecallChannel,
    RecallFusion,
    RecallStrategy,
    UserHistoryChannel,
    request_rng,
)
from .replay import LoggedImpression, ReplayBuffer
from .state import FeatureCache, ServingState, UserHistoryState

__all__ = [
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "BatchScorer",
    "RankedRequest",
    "ScoreRequest",
    "OnlineRequestEncoder",
    "LoadTestReport",
    "auc_on_slice",
    "generate_burst",
    "run_load_test",
    "sample_labeled_slice",
    "ServeRequest",
    "ServeResponse",
    "PipelineStage",
    "RecallStage",
    "RankStage",
    "RerankRule",
    "CategoryDiversityRule",
    "RerankStage",
    "ExposureLogStage",
    "ServingPipeline",
    "StageMetrics",
    "StageStats",
    "PipelineConfig",
    "build_pipeline",
    "ScenarioRouter",
    "PersonalizationPlatform",
    "ServedImpression",
    "Ranker",
    "RecallChannel",
    "RecallStrategy",
    "request_rng",
    "LocationBasedRecall",
    "GeoGridChannel",
    "EmbeddingANNChannel",
    "PopularityChannel",
    "UserHistoryChannel",
    "MultiChannelRecall",
    "RecallFusion",
    "LoggedImpression",
    "ReplayBuffer",
    "FeatureCache",
    "ServingState",
    "UserHistoryState",
]
