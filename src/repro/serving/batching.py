"""Micro-batched scoring engine for high-throughput serving.

This is the reproduction's Real-Time Prediction tier (RTP in the paper's
Fig. 13 deployment diagram), sized for the traffic peaks of Fig. 2a: at
mealtime bursts the scoring tier cannot afford one model invocation per
request.

The per-request loop in :class:`repro.serving.platform.PersonalizationPlatform`
pays the full Python + small-matrix overhead of one forward pass per request.
Under heavy traffic the RTP tier instead collects the requests that arrive
within a scheduling window and scores them together: every candidate of every
request becomes one row of a single flat batch, and one ``no_grad`` forward
pass serves the whole micro-batch.  Because all row-wise layers (embedding
gather, linear, target attention, eval-mode batch norm) are independent across
rows, batched scores are numerically identical to sequential ones — a parity
test pins this down to 1e-8.

:class:`BatchScorer` is the engine: it packs :class:`ScoreRequest` objects
into micro-batches bounded by ``max_batch_rows`` candidate rows, runs the
model once per micro-batch, and splits the scores back per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.world import RequestContext
from ..models.base import BaseCTRModel
from ..models.two_tower import QUANTIZATIONS
from .encoder import OnlineRequestEncoder
from .state import ServingState

__all__ = ["ScoreRequest", "RankedRequest", "ModelRef", "BatchScorer"]


class ModelRef:
    """Single mutable slot holding the live scoring model.

    The ranker and its micro-batching scorer share one ref, so a model swap
    is a single reference assignment observed by both at once — there is no
    window in which the two disagree about which model serves (the previous
    two-step ``ranker.model = m; scorer.model = m`` had one).  Scoring code
    snapshots ``ref.model`` once per micro-batch, so each batch is scored
    entirely by one model version.
    """

    __slots__ = ("model",)

    def __init__(self, model: BaseCTRModel) -> None:
        self.model = model


@dataclass
class ScoreRequest:
    """One pending scoring job: a request context plus its recalled candidates."""

    context: RequestContext
    candidates: np.ndarray
    positions: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.candidates = np.asarray(self.candidates, dtype=np.int64)

    def __len__(self) -> int:
        return int(len(self.candidates))


@dataclass
class RankedRequest:
    """Result of ranking one request: items in display order with their scores."""

    context: RequestContext
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(len(self.items))


class BatchScorer:
    """Scores many concurrent requests with one forward pass per micro-batch.

    When the model supports the two-tower split (``supports_two_tower``) and
    ``two_tower`` is not ``False``, scoring takes the fused fast path: frozen
    per-item tables (cached in the state's feature cache, keyed by the
    model's serving uid) are gathered for the batch's candidates, the
    user/context side is computed once per request, and one late-binding pass
    produces the scores — see :mod:`repro.models.two_tower`.  Models that
    cannot split exactly (the BASM family) transparently use the full
    forward, as does ``two_tower=False`` (the parity oracle).
    """

    def __init__(
        self,
        model: Optional[BaseCTRModel],
        encoder: OnlineRequestEncoder,
        max_batch_rows: int = 2048,
        two_tower: object = "auto",
        item_table_quantization: str = "float32",
        model_ref: Optional[ModelRef] = None,
    ) -> None:
        if max_batch_rows <= 0:
            raise ValueError("max_batch_rows must be positive")
        if two_tower not in ("auto", True, False):
            raise ValueError(f"two_tower must be 'auto', True or False, got {two_tower!r}")
        if item_table_quantization not in QUANTIZATIONS:
            raise ValueError(
                f"item_table_quantization must be one of {QUANTIZATIONS}, "
                f"got {item_table_quantization!r}"
            )
        if model_ref is None:
            if model is None:
                raise ValueError("provide either model or model_ref")
            model_ref = ModelRef(model)
        self._model_ref = model_ref
        if two_tower is True and not self._model_ref.model.supports_two_tower:
            raise ValueError(
                f"two_tower=True but model {self._model_ref.model.name!r} does not "
                f"support the two-tower split"
            )
        self.encoder = encoder
        self.max_batch_rows = max_batch_rows
        self.two_tower = two_tower
        self.item_table_quantization = item_table_quantization
        self.batches_run = 0
        self.rows_scored = 0
        self.fused_batches = 0

    @property
    def model(self) -> BaseCTRModel:
        """The live model (read through the shared :class:`ModelRef`)."""
        return self._model_ref.model

    @model.setter
    def model(self, model: BaseCTRModel) -> None:
        self._model_ref.model = model

    # ------------------------------------------------------------------ #
    def _micro_batches(self, requests: Sequence[ScoreRequest]) -> List[List[int]]:
        """Greedily pack request indices so each batch stays under the row cap.

        A single oversized request still forms its own batch — it cannot be
        split without breaking per-request top-k semantics.
        """
        groups: List[List[int]] = []
        current: List[int] = []
        rows = 0
        for index, request in enumerate(requests):
            size = max(len(request), 1)
            if current and rows + size > self.max_batch_rows:
                groups.append(current)
                current = []
                rows = 0
            current.append(index)
            rows += size
        if current:
            groups.append(current)
        return groups

    def _item_tables(self, model: BaseCTRModel, state: ServingState):
        """This model version's frozen item tables, built once per version.

        Keyed by the model's ``serving_uid``, so the cache can never hand a
        promoted model its predecessor's tables; ``hot_swap`` additionally
        drops stale entries via ``invalidate_volatile``.
        """
        key = ("item_tower", model.name, model.serving_uid, self.item_table_quantization)

        def build():
            return model.precompute_item_tables(
                self.encoder.item_static_table(state),
                quantization=self.item_table_quantization,
            )

        return state.features.lookup_model_table(key, build)

    def score_many(
        self, requests: Sequence[ScoreRequest], state: ServingState
    ) -> List[np.ndarray]:
        """Predicted click probability arrays, one per request, in input order."""
        results: List[Optional[np.ndarray]] = [None] * len(requests)
        for group in self._micro_batches(requests):
            members = [requests[index] for index in group]
            non_empty = [index for index, request in zip(group, members) if len(request)]
            for index, request in zip(group, members):
                if len(request) == 0:
                    results[index] = np.zeros(0, dtype=np.float32)
            if not non_empty:
                continue
            # One snapshot per micro-batch: a concurrent hot-swap flips the
            # shared ref atomically, so this batch is scored entirely by one
            # model version.
            model = self._model_ref.model
            contexts = [requests[index].context for index in non_empty]
            candidate_lists = [requests[index].candidates for index in non_empty]
            positions_list = [requests[index].positions for index in non_empty]
            if self.two_tower is not False and model.supports_two_tower:
                split_batch, offsets = self.encoder.encode_split(
                    contexts, candidate_lists, state, positions_list=positions_list
                )
                scores = model.score_two_tower(split_batch, self._item_tables(model, state))
                self.fused_batches += 1
            else:
                with nn.no_grad():
                    batch, offsets = self.encoder.encode_many(
                        contexts, candidate_lists, state, positions_list=positions_list
                    )
                    scores = model.predict(batch)
            self.batches_run += 1
            self.rows_scored += int(offsets[-1])
            for slot, index in enumerate(non_empty):
                results[index] = scores[offsets[slot]:offsets[slot + 1]]
        return results  # type: ignore[return-value]

    def rank_many(
        self,
        requests: Sequence[ScoreRequest],
        state: ServingState,
        top_k: int,
    ) -> List[RankedRequest]:
        """Rank every request's candidates and keep its ``top_k`` best.

        ``top_k`` larger than a request's candidate count simply returns all
        of that request's candidates in score order.
        """
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        score_lists = self.score_many(requests, state)
        ranked = []
        for request, scores in zip(requests, score_lists):
            order = np.argsort(-scores, kind="stable")[:top_k]
            ranked.append(
                RankedRequest(
                    context=request.context,
                    items=request.candidates[order],
                    scores=scores[order],
                )
            )
        return ranked
