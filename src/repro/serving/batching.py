"""Micro-batched scoring engine for high-throughput serving.

This is the reproduction's Real-Time Prediction tier (RTP in the paper's
Fig. 13 deployment diagram), sized for the traffic peaks of Fig. 2a: at
mealtime bursts the scoring tier cannot afford one model invocation per
request.

The per-request loop in :class:`repro.serving.platform.PersonalizationPlatform`
pays the full Python + small-matrix overhead of one forward pass per request.
Under heavy traffic the RTP tier instead collects the requests that arrive
within a scheduling window and scores them together: every candidate of every
request becomes one row of a single flat batch, and one ``no_grad`` forward
pass serves the whole micro-batch.  Because all row-wise layers (embedding
gather, linear, target attention, eval-mode batch norm) are independent across
rows, batched scores are numerically identical to sequential ones — a parity
test pins this down to 1e-8.

:class:`BatchScorer` is the engine: it packs :class:`ScoreRequest` objects
into micro-batches bounded by ``max_batch_rows`` candidate rows, runs the
model once per micro-batch, and splits the scores back per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.world import RequestContext
from ..models.base import BaseCTRModel
from .encoder import OnlineRequestEncoder
from .state import ServingState

__all__ = ["ScoreRequest", "RankedRequest", "BatchScorer"]


@dataclass
class ScoreRequest:
    """One pending scoring job: a request context plus its recalled candidates."""

    context: RequestContext
    candidates: np.ndarray
    positions: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.candidates = np.asarray(self.candidates, dtype=np.int64)

    def __len__(self) -> int:
        return int(len(self.candidates))


@dataclass
class RankedRequest:
    """Result of ranking one request: items in display order with their scores."""

    context: RequestContext
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(len(self.items))


class BatchScorer:
    """Scores many concurrent requests with one forward pass per micro-batch."""

    def __init__(
        self,
        model: BaseCTRModel,
        encoder: OnlineRequestEncoder,
        max_batch_rows: int = 2048,
    ) -> None:
        if max_batch_rows <= 0:
            raise ValueError("max_batch_rows must be positive")
        self.model = model
        self.encoder = encoder
        self.max_batch_rows = max_batch_rows
        self.batches_run = 0
        self.rows_scored = 0

    # ------------------------------------------------------------------ #
    def _micro_batches(self, requests: Sequence[ScoreRequest]) -> List[List[int]]:
        """Greedily pack request indices so each batch stays under the row cap.

        A single oversized request still forms its own batch — it cannot be
        split without breaking per-request top-k semantics.
        """
        groups: List[List[int]] = []
        current: List[int] = []
        rows = 0
        for index, request in enumerate(requests):
            size = max(len(request), 1)
            if current and rows + size > self.max_batch_rows:
                groups.append(current)
                current = []
                rows = 0
            current.append(index)
            rows += size
        if current:
            groups.append(current)
        return groups

    def score_many(
        self, requests: Sequence[ScoreRequest], state: ServingState
    ) -> List[np.ndarray]:
        """Predicted click probability arrays, one per request, in input order."""
        results: List[Optional[np.ndarray]] = [None] * len(requests)
        for group in self._micro_batches(requests):
            members = [requests[index] for index in group]
            non_empty = [index for index, request in zip(group, members) if len(request)]
            for index, request in zip(group, members):
                if len(request) == 0:
                    results[index] = np.zeros(0, dtype=np.float32)
            if not non_empty:
                continue
            with nn.no_grad():
                batch, offsets = self.encoder.encode_many(
                    [requests[index].context for index in non_empty],
                    [requests[index].candidates for index in non_empty],
                    state,
                    positions_list=[requests[index].positions for index in non_empty],
                )
                scores = self.model.predict(batch)
            self.batches_run += 1
            self.rows_scored += int(offsets[-1])
            for slot, index in enumerate(non_empty):
                results[index] = scores[offsets[slot]:offsets[slot + 1]]
        return results  # type: ignore[return-value]

    def rank_many(
        self,
        requests: Sequence[ScoreRequest],
        state: ServingState,
        top_k: int,
    ) -> List[RankedRequest]:
        """Rank every request's candidates and keep its ``top_k`` best.

        ``top_k`` larger than a request's candidate count simply returns all
        of that request's candidates in score order.
        """
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        score_lists = self.score_many(requests, state)
        ranked = []
        for request, scores in zip(requests, score_lists):
            order = np.argsort(-scores, kind="stable")[:top_k]
            ranked.append(
                RankedRequest(
                    context=request.context,
                    items=request.candidates[order],
                    scores=scores[order],
                )
            )
        return ranked
