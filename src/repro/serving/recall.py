"""Location-based candidate recall (the "Recall" stage of the paper's Fig. 1)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.world import RequestContext, SyntheticWorld

__all__ = ["LocationBasedRecall"]


class LocationBasedRecall:
    """Recall nearby candidate shops for a request.

    Candidates are restricted to the request's city and ranked by proximity,
    with a little randomisation so different requests from the same location
    do not always see an identical candidate set (mirroring recall-channel
    churn in the production system).
    """

    def __init__(self, world: SyntheticWorld, pool_size: int = 30, seed: int = 5) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.world = world
        self.pool_size = pool_size
        self.rng = np.random.default_rng(seed)

    def recall(self, context: RequestContext, pool_size: Optional[int] = None) -> np.ndarray:
        """Return up to ``pool_size`` candidate item indices for the request."""
        size = pool_size or self.pool_size
        pool = self.world.items_by_city[context.city]
        if len(pool) == 0:
            pool = np.arange(self.world.config.num_items)
        if len(pool) <= size:
            return pool.copy()
        delta = self.world.item_location[pool] - np.array([context.latitude, context.longitude])
        distance = np.sqrt((delta ** 2).sum(axis=1))
        weights = 1.0 / (0.05 + distance)
        weights = weights / weights.sum()
        return self.rng.choice(pool, size=size, replace=False, p=weights)
