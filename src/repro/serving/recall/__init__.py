"""Multi-channel recall subsystem (the Recall stage of the paper's Fig. 1).

A pluggable set of retrieval scenarios — indexed geo retrieval, embedding
similarity, popularity priors, user-history expansion — fused into one
candidate pool for the ranker, plus the seed proximity sampler kept as a
benchmark-parity escape hatch.  See :mod:`repro.serving.recall.base` for the
channel contract and :mod:`repro.serving.recall.fusion` for the blend policy.
"""

from .base import RecallChannel, RecallStrategy, request_rng
from .channels import (
    EmbeddingANNChannel,
    GeoGridChannel,
    LocationBasedRecall,
    PopularityChannel,
    UserHistoryChannel,
)
from .fusion import MultiChannelRecall, RecallFusion

__all__ = [
    "RecallChannel",
    "RecallStrategy",
    "request_rng",
    "EmbeddingANNChannel",
    "GeoGridChannel",
    "LocationBasedRecall",
    "PopularityChannel",
    "UserHistoryChannel",
    "MultiChannelRecall",
    "RecallFusion",
]
