"""Channel fusion: blend per-channel candidate lists into one pool.

:class:`RecallFusion` is the pure merge policy — dedup, quota blend,
truncate — and :class:`MultiChannelRecall` is the serving-facing recall
strategy that fans a request out over its channels, fuses the results and
guarantees a full pool.  The fused pool is a *set* for the ranker: order
carries no exposure meaning (display order is decided by ranking scores),
but it is still deterministic for reproducibility.

Fusion invariants (pinned by ``tests/serving/test_recall_channels.py``):

* no duplicate items in the fused pool;
* with every channel supplying enough candidates, each channel contributes
  exactly its quota;
* the result is invariant under permutation of the channel list — channels
  are always blended in canonical (name-sorted) order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...data.world import RequestContext, SyntheticWorld
from ..state import ServingState
from .base import RecallChannel, request_rng
from .channels import (
    EmbeddingANNChannel,
    GeoGridChannel,
    PopularityChannel,
    UserHistoryChannel,
)

__all__ = ["RecallFusion", "MultiChannelRecall"]


class RecallFusion:
    """Deduplicate, quota-blend and truncate channel outputs.

    ``quotas`` are relative weights per channel name (missing names default
    to weight 1).  Pool slots are split by largest-remainder apportionment;
    each channel first fills its own slots with its best unseen items, then
    unused capacity is backfilled round-robin from channels that still have
    candidates, so a short channel (cold-start user, sparse grid cell) never
    shrinks the pool while others have material.
    """

    def __init__(self, quotas: Optional[Dict[str, float]] = None) -> None:
        self.quotas = dict(quotas) if quotas else {}
        for name, weight in self.quotas.items():
            if weight < 0:
                raise ValueError(f"quota weight for {name!r} must be non-negative")

    def quota_counts(self, names: Sequence[str], pool_size: int) -> Dict[str, int]:
        """Largest-remainder split of ``pool_size`` slots over ``names``."""
        names = sorted(names)
        weights = np.array([self.quotas.get(name, 1.0) for name in names], dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(names))
            total = float(len(names))
        exact = pool_size * weights / total
        counts = np.floor(exact).astype(np.int64)
        remainders = exact - counts
        # Hand leftover slots to the largest remainders; ties go in name order.
        for index in np.argsort(-remainders, kind="stable")[: pool_size - int(counts.sum())]:
            counts[index] += 1
        return dict(zip(names, (int(c) for c in counts)))

    def fuse(self, channel_candidates: Dict[str, np.ndarray], pool_size: int) -> np.ndarray:
        """Blend per-channel ranked candidate arrays into one deduplicated pool."""
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        names = sorted(channel_candidates)
        quota = self.quota_counts(names, pool_size)
        queues = {
            name: [int(item) for item in channel_candidates[name]] for name in names
        }
        seen = set()
        fused: List[int] = []

        def take(name: str, budget: int) -> int:
            """Move up to ``budget`` unseen items from ``name``'s queue to the pool."""
            taken = 0
            queue = queues[name]
            while queue and taken < budget and len(fused) < pool_size:
                item = queue.pop(0)
                if item not in seen:
                    seen.add(item)
                    fused.append(item)
                    taken += 1
            return taken

        # Phase 1: every channel fills its quota with its best unseen items.
        for name in names:
            take(name, quota[name])
        # Phase 2: round-robin backfill from whoever still has candidates.
        while len(fused) < pool_size and any(queues[name] for name in names):
            for name in names:
                if len(fused) >= pool_size:
                    break
                take(name, 1)
        return np.asarray(fused, dtype=np.int64)


class MultiChannelRecall:
    """The multi-channel Recall stage: fan out, fuse, guarantee a full pool.

    Drop-in replacement for the seed proximity sampler behind the same
    ``recall(context, pool_size=None)`` strategy interface the platform, the
    A/B simulator and the load generator consume.  Each channel receives its
    own :func:`request_rng` stream, so pools are a pure function of
    (request, state) — the property behind the batched/sequential serving
    parity guarantee.  When even fusion plus backfill cannot fill the pool
    (a city with fewer items than ``pool_size``), the whole city pool is
    returned, matching the seed sampler's semantics.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        state: ServingState,
        channels: Sequence[RecallChannel],
        pool_size: int = 30,
        quotas: Optional[Dict[str, float]] = None,
        seed: int = 5,
    ) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        if not channels:
            raise ValueError("at least one recall channel is required")
        names = [channel.name for channel in channels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate channel names: {names}")
        self.world = world
        self.state = state
        self.channels = list(channels)
        self.pool_size = pool_size
        self.fusion = RecallFusion(quotas)
        self.seed = seed

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        world: SyntheticWorld,
        state: ServingState,
        encoder=None,
        model=None,
        pool_size: int = 30,
        quotas: Optional[Dict[str, float]] = None,
        seed: int = 5,
    ) -> "MultiChannelRecall":
        """The default channel stack: geo grid, popularity, user history,
        plus embedding-ANN when a model (and its encoder) is available.

        The A/B simulator builds without a model on purpose — a shared
        recall stage must not embed one arm's model, or the "recall" would
        leak ranking signal into the control bucket.
        """
        channels: List[RecallChannel] = [
            GeoGridChannel(world),
            PopularityChannel(world),
            UserHistoryChannel(world),
        ]
        if model is not None:
            if encoder is None:
                raise ValueError("building an embedding channel requires the encoder")
            channels.append(EmbeddingANNChannel.from_model(world, encoder, model, state))
        return cls(world, state, channels, pool_size=pool_size, quotas=quotas, seed=seed)

    # ------------------------------------------------------------------ #
    def channel_results(
        self, context: RequestContext, pool_size: Optional[int] = None
    ) -> Dict[str, np.ndarray]:
        """Per-channel ranked candidates (exposed for attribution/debugging)."""
        size = pool_size or self.pool_size
        return {
            channel.name: channel.recall(
                context, self.state, size,
                request_rng(self.seed, context, salt=channel.name),
            )
            for channel in self.channels
        }

    def recall(self, context: RequestContext, pool_size: Optional[int] = None) -> np.ndarray:
        """Fused candidate pool for one request (up to ``pool_size`` items)."""
        size = pool_size or self.pool_size
        fused = self.fusion.fuse(self.channel_results(context, size), size)
        if len(fused) < size:
            # Sparse corner (tiny city, cold user everywhere): top up from the
            # city pool in deterministic item order.
            pool = self.world.recall_pool(context.city)
            missing = np.setdiff1d(pool, fused, assume_unique=False)
            fused = np.concatenate([fused, missing[: size - len(fused)]])
        return fused.astype(np.int64)

    # ------------------------------------------------------------------ #
    def refresh_embeddings(self, model, encoder) -> bool:
        """Re-export ANN vectors after a model hot-swap; True if refreshed.

        Production ANN indexes rebuild asynchronously after a promotion; here
        the rebuild is synchronous and cheap (one embedding gather), keeping
        the recall stage consistent with the freshly served model.
        """
        refreshed = False
        for channel in self.channels:
            if isinstance(channel, EmbeddingANNChannel):
                table = encoder.item_static_table(self.state)
                channel.refresh(model.export_item_embeddings(table))
                refreshed = True
        return refreshed
