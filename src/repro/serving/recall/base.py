"""Recall-channel contract and deterministic per-request randomness.

The paper's Fig. 1 pipeline begins with a Recall stage that fans a request
out over several retrieval scenarios before the BASM ranker sees anything.
Every concrete channel implements :class:`RecallChannel`; the fusion layer
(:mod:`repro.serving.recall.fusion`) blends their outputs into one candidate
pool.

Randomness is *derived from the request*, never drawn from shared mutable
state: a channel that wants to randomise receives a generator built by
:func:`request_rng` from the request's identity, so recalling the same
request twice — or recalling a burst in any order, batched or sequential —
always produces the same pool.  This is the property that lets
``PersonalizationPlatform.serve`` and ``serve_many`` guarantee identical
candidate sets.
"""

from __future__ import annotations

import zlib
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ...data.world import RequestContext
from ..state import ServingState

__all__ = ["RecallChannel", "RecallStrategy", "request_rng"]


@runtime_checkable
class RecallStrategy(Protocol):
    """The recall seam every serving consumer depends on.

    A strategy turns one request into a ranked candidate pool:
    :class:`repro.serving.recall.fusion.MultiChannelRecall` (the fused
    multi-channel stage), the seed proximity sampler
    :class:`repro.serving.recall.channels.LocationBasedRecall`, and any
    user-supplied retrieval all satisfy it.  ``pool_size=None`` means "use
    the strategy's own configured pool size".  Implementations must be pure
    with respect to (request, serving state) — randomness comes from
    :func:`request_rng`, never from shared mutable generators — so batched
    and sequential serving recall identical pools.
    """

    def recall(
        self, context: RequestContext, pool_size: Optional[int] = None
    ) -> np.ndarray: ...


def request_rng(seed: int, context: RequestContext, salt: str = "") -> np.random.Generator:
    """A generator deterministically keyed by (seed, salt, request identity).

    The key covers everything that identifies the request — user, day, hour
    and geohash — so two distinct requests decorrelate while replays of the
    same request reproduce bit-identical draws.  ``salt`` keeps channels
    independent: adding or removing one channel never shifts another's
    stream.
    """
    digest = zlib.crc32(
        f"{salt}:{context.user_index}:{context.day}:{context.hour}:{context.geohash}"
        .encode("utf-8")
    )
    return np.random.default_rng((int(seed) & 0xFFFFFFFF, digest))


class RecallChannel:
    """One retrieval scenario: (request, state) -> ranked candidate items.

    Implementations return up to ``size`` item indices ordered best-first.
    They must be pure with respect to their inputs — any randomisation goes
    through the supplied per-request ``rng`` — and may return fewer than
    ``size`` items (or none at all, e.g. a history channel facing a
    cold-start user); the fusion layer backfills from the other channels.
    """

    #: Stable identifier; fusion quotas and the canonical blend order key on it.
    name = "channel"

    def recall(
        self,
        context: RequestContext,
        state: ServingState,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raise NotImplementedError
