"""Concrete recall channels (the "Recall" stage of the paper's Fig. 1).

Four production-style retrieval scenarios plus the original proximity
sampler:

* :class:`GeoGridChannel` — indexed geo retrieval: a precomputed
  geohash-cell inverted index over the world's item locations replaces the
  per-request full-city distance scan;
* :class:`EmbeddingANNChannel` — vectorised top-k similarity search over
  item embeddings exported from a trained ranking model
  (:meth:`repro.models.base.BaseCTRModel.export_item_embeddings`);
* :class:`PopularityChannel` — per-city popularity from live click
  counters, sharpened by the per-time-period counters in
  :class:`repro.serving.state.ServingState`;
* :class:`UserHistoryChannel` — expands the user's recent shops and
  categories from the serving state into same-city candidates;
* :class:`LocationBasedRecall` — the seed proximity-weighted sampler, kept
  as the benchmark-parity escape hatch, now with per-request deterministic
  randomness instead of a shared mutated generator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...data.world import RequestContext, SyntheticWorld
from ...features.geohash import geohash_neighbors
from ..state import ServingState
from .base import RecallChannel, request_rng

__all__ = [
    "LocationBasedRecall",
    "GeoGridChannel",
    "EmbeddingANNChannel",
    "PopularityChannel",
    "UserHistoryChannel",
]


def _top_k_by_score(pool: np.ndarray, scores: np.ndarray, size: int) -> np.ndarray:
    """Highest-scoring ``size`` items of ``pool``, deterministically ordered.

    ``argpartition`` keeps the cost at O(pool) for small ``size``; the final
    stable sort over the shortlist breaks score ties by pool position, so the
    result never depends on how the pool happened to be laid out in memory.
    """
    if len(pool) <= size:
        order = np.argsort(-scores, kind="stable")
        return pool[order]
    shortlist = np.argpartition(-scores, size - 1)[:size]
    shortlist = shortlist[np.lexsort((shortlist, -scores[shortlist]))]
    return pool[shortlist]


class LocationBasedRecall:
    """Proximity-weighted sampling over the request's city (the seed recall).

    Candidates are restricted to the request's city and sampled with
    inverse-distance weights, computed with a full distance scan over the
    city pool — this is the baseline the indexed :class:`GeoGridChannel` is
    benchmarked against, and the escape hatch
    ``PersonalizationPlatform(..., recall=LocationBasedRecall(world))`` that
    keeps a benchmark on the seed *sampling strategy* instead of the fused
    multi-channel stage.

    Randomisation is keyed to the request via :func:`request_rng` rather
    than drawn from a shared mutated generator, so batched and sequential
    serving recall identical pools (the seed implementation's shared
    ``self.rng`` made ``serve_many`` order-dependent).  Consequently the
    *strategy* is preserved but the concrete draws differ from the pre-fix
    sampler: archived pool-dependent numbers do not reproduce bit-for-bit.
    """

    def __init__(self, world: SyntheticWorld, pool_size: int = 30, seed: int = 5) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.world = world
        self.pool_size = pool_size
        self.seed = seed

    def recall(
        self,
        context: RequestContext,
        pool_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Return up to ``pool_size`` candidate item indices for the request."""
        size = pool_size or self.pool_size
        pool = self.world.recall_pool(context.city)
        if len(pool) <= size:
            return pool.copy()
        delta = self.world.item_location[pool] - np.array([context.latitude, context.longitude])
        distance = np.sqrt((delta ** 2).sum(axis=1))
        weights = 1.0 / (0.05 + distance)
        weights = weights / weights.sum()
        if rng is None:
            rng = request_rng(self.seed, context, salt="proximity")
        return rng.choice(pool, size=size, replace=False, p=weights)


class GeoGridChannel(RecallChannel):
    """Nearby items via a precomputed geohash-cell inverted index.

    Items are bucketed once, at construction, into geohash cells at several
    precisions.  A request gathers its own cell plus the 8 neighbours at the
    finest precision, degrading to coarser cells only when the grid is too
    sparse, and ranks just the gathered items by true distance — no
    per-request scan over the whole city.  Neighbour lookups are memoised
    per cell, so steady-state retrieval is a handful of dict gathers plus a
    distance computation over a few dozen items.

    ``min_precision`` bounds how coarse the degradation may go before the
    channel falls back to the request's city pool; the default (4, cells of
    roughly 0.18°) keeps a 3x3 block well inside one synthetic city, so the
    grid never silently recalls another city's shops.
    """

    name = "geo_grid"

    def __init__(
        self,
        world: SyntheticWorld,
        max_precision: Optional[int] = None,
        min_precision: int = 4,
    ) -> None:
        self.world = world
        self.max_precision = max_precision or world.config.geohash_precision
        self.min_precision = min(min_precision, self.max_precision)
        self._index: Dict[int, Dict[str, np.ndarray]] = {}
        for precision in range(self.min_precision, self.max_precision + 1):
            cells: Dict[str, List[int]] = {}
            for item, geohash in enumerate(world.item_geohash):
                cells.setdefault(geohash[:precision], []).append(item)
            self._index[precision] = {
                cell: np.asarray(items, dtype=np.int64) for cell, items in cells.items()
            }
        self._neighbor_cache: Dict[str, List[str]] = {}
        # Requests cluster on home cells, so the 3x3-block gather around a
        # cell is memoised per (precision, cell).  Keying on the precision
        # keeps recall a pure function of (request, state, size): which
        # precision serves a request depends only on the static grid and the
        # requested size, never on what earlier calls happened to cache.
        self._gather_cache: Dict[tuple, np.ndarray] = {}

    def _cells_around(self, cell: str) -> List[str]:
        cached = self._neighbor_cache.get(cell)
        if cached is None:
            cached = [cell] + geohash_neighbors(cell)
            self._neighbor_cache[cell] = cached
        return cached

    def _block_items(self, precision: int, cell: str) -> np.ndarray:
        """All items in the 3x3 block of cells around ``cell`` (memoised)."""
        key = (precision, cell)
        gathered = self._gather_cache.get(key)
        if gathered is None:
            index = self._index[precision]
            parts = [
                index[neighbor]
                for neighbor in self._cells_around(cell)
                if neighbor in index
            ]
            if not parts:
                gathered = np.zeros(0, dtype=np.int64)
            else:
                gathered = parts[0] if len(parts) == 1 else np.concatenate(parts)
            self._gather_cache[key] = gathered
        return gathered

    def _gather(self, context: RequestContext, size: int) -> np.ndarray:
        finest = context.geohash[: self.max_precision]
        for precision in range(min(self.max_precision, len(finest)),
                               self.min_precision - 1, -1):
            gathered = self._block_items(precision, finest[:precision])
            if len(gathered) >= size:
                return gathered
        return self.world.recall_pool(context.city)

    def recall(
        self,
        context: RequestContext,
        state: ServingState,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        gathered = self._gather(context, size)
        distance = self.world.distances_to_locations(
            gathered, np.array([context.latitude, context.longitude])
        )
        return _top_k_by_score(gathered, -distance, size)


class EmbeddingANNChannel(RecallChannel):
    """Vectorised top-k similarity search over exported item embeddings.

    The "i2i" channel of a production recommender: the user's recent clicks
    are averaged into a query vector and matched against the L2-normalised
    item-embedding matrix of the request's city with one mat-vec.  The
    embedding matrix comes from whichever trained registry model the caller
    exports (:meth:`repro.models.base.BaseCTRModel.export_item_embeddings`)
    and is refreshed on hot-swap by
    :meth:`repro.serving.recall.fusion.MultiChannelRecall.refresh_embeddings`.
    A cold-start user with no click history yields no candidates — the
    fusion layer backfills from the other channels.
    """

    name = "embedding_ann"

    def __init__(self, world: SyntheticWorld, item_embeddings: np.ndarray,
                 history_window: int = 10) -> None:
        if history_window <= 0:
            raise ValueError("history_window must be positive")
        self.world = world
        self.history_window = history_window
        self.item_embeddings = self._normalize(item_embeddings)

    @staticmethod
    def _normalize(embeddings: np.ndarray) -> np.ndarray:
        # float32 end to end: the export is float32 (the serving dtype) and
        # keeping it avoids a silent 2x memory blow-up of the ANN matrix.
        embeddings = np.asarray(embeddings, dtype=np.float32)
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        return (embeddings / np.maximum(norms, 1e-12)).astype(np.float32)

    @classmethod
    def from_model(cls, world: SyntheticWorld, encoder, model, state: ServingState,
                   history_window: int = 10) -> "EmbeddingANNChannel":
        """Build the channel from a registry model's exported item vectors."""
        table = encoder.item_static_table(state)
        return cls(world, model.export_item_embeddings(table),
                   history_window=history_window)

    def refresh(self, item_embeddings: np.ndarray) -> None:
        """Swap in a freshly exported embedding matrix (model promotion)."""
        if item_embeddings.shape[0] != self.item_embeddings.shape[0]:
            raise ValueError(
                f"embedding matrix rows changed: "
                f"{self.item_embeddings.shape[0]} -> {item_embeddings.shape[0]}"
            )
        self.item_embeddings = self._normalize(item_embeddings)

    def recall(
        self,
        context: RequestContext,
        state: ServingState,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Snapshot under the state lock so a concurrent feedback append
        # cannot land mid-read (cluster workers serve while clients feed back).
        with state.lock:
            history = state.histories.get(context.user_index)
            if history is None or len(history) == 0:
                return np.zeros(0, dtype=np.int64)
            recent = np.asarray(history.items[-self.history_window:], dtype=np.int64)
        query = self.item_embeddings[recent].mean(axis=0)
        norm = np.linalg.norm(query)
        if norm < 1e-12:
            return np.zeros(0, dtype=np.int64)
        pool = self.world.recall_pool(context.city)
        scores = self.item_embeddings[pool] @ (query / norm)
        return _top_k_by_score(pool, scores, size)


class PopularityChannel(RecallChannel):
    """What everyone here is clicking right now.

    Ranks the city pool by live click counters — the overall count plus the
    count within the request's time period, so breakfast traffic surfaces
    breakfast shops — with a small static quality prior as the cold-start
    tie-breaker.  Counters come from :class:`ServingState` (seeded from the
    offline log, updated by ``record_clicks``), so the channel adapts as
    traffic shifts without ever touching ground-truth world internals.
    """

    name = "popularity"

    def __init__(self, world: SyntheticWorld, period_weight: float = 1.0,
                 quality_weight: float = 0.5) -> None:
        self.world = world
        self.period_weight = period_weight
        self.quality_weight = quality_weight

    def recall(
        self,
        context: RequestContext,
        state: ServingState,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        pool = self.world.recall_pool(context.city)
        scores = (
            np.log1p(state.item_clicks[pool])
            + self.period_weight * np.log1p(state.item_period_clicks[pool, context.time_period])
            + self.quality_weight * self.world.item_quality[pool]
        )
        return _top_k_by_score(pool, scores, size)


class UserHistoryChannel(RecallChannel):
    """Expand the user's recent shops and categories into candidates.

    Two tiers, mirroring a production u2i channel: first the shops the user
    actually clicked recently (re-order/revisit traffic dominates OFOS), then
    same-city items from the user's recency-weighted favourite categories,
    each category's slice ranked by live popularity.  A user with no history
    contributes nothing and the fusion layer backfills.
    """

    name = "user_history"

    def __init__(self, world: SyntheticWorld, history_window: int = 20,
                 revisit_share: float = 0.3, recency_decay: float = 0.9) -> None:
        if not 0.0 <= revisit_share <= 1.0:
            raise ValueError("revisit_share must be in [0, 1]")
        self.world = world
        self.history_window = history_window
        self.revisit_share = revisit_share
        self.recency_decay = recency_decay

    def recall(
        self,
        context: RequestContext,
        state: ServingState,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Snapshot both parallel lists under the state lock: a concurrent
        # feedback append between the two slices would misalign item and
        # category windows (and the recency weights computed from them).
        with state.lock:
            history = state.histories.get(context.user_index)
            if history is None or len(history) == 0:
                return np.zeros(0, dtype=np.int64)
            items = np.asarray(history.items[-self.history_window:], dtype=np.int64)
            categories = np.asarray(history.categories[-self.history_window:], dtype=np.int64)
        # Recency weights: the latest event gets weight 1, older ones decay.
        weights = self.recency_decay ** np.arange(len(items) - 1, -1, -1, dtype=np.float64)

        chosen: List[int] = []
        seen = set()

        # Tier 1 — revisit the user's own recent shops (latest first), but
        # only those in the request's city.
        revisit_budget = int(round(self.revisit_share * size))
        city = int(context.city)
        for item in items[::-1]:
            if len(chosen) >= revisit_budget:
                break
            item = int(item)
            if item not in seen and int(self.world.item_city[item]) == city:
                seen.add(item)
                chosen.append(item)

        # Tier 2 — expand favourite categories into same-city items, most
        # loved category first, each slice ranked by live popularity.
        category_weight: Dict[int, float] = {}
        for category, weight in zip(categories, weights):
            category_weight[int(category)] = category_weight.get(int(category), 0.0) + weight
        ranked_categories = sorted(category_weight, key=lambda c: (-category_weight[c], c))
        for category in ranked_categories:
            if len(chosen) >= size:
                break
            slice_pool = self.world.items_by_city_category.get((city, category))
            if slice_pool is None or len(slice_pool) == 0:
                continue
            popularity = (
                np.log1p(state.item_clicks[slice_pool]) + self.world.item_quality[slice_pool]
            )
            for item in _top_k_by_score(slice_pool, popularity, size):
                if len(chosen) >= size:
                    break
                item = int(item)
                if item not in seen:
                    seen.add(item)
                    chosen.append(item)
        return np.asarray(chosen, dtype=np.int64)
