"""End-to-end serving platform (the paper's Fig. 13 deployment diagram).

``PersonalizationPlatform`` plays the role of TPP — but since the pipeline
redesign it is a *thin facade* over a :class:`repro.serving.pipeline.ServingPipeline`:
the staged flow (recall → feature assembly → real-time prediction → exposure)
lives in the pipeline's stage graph, and the platform only keeps the
backward-compatible surface (``serve``/``serve_many``/``feedback``/
``swap_model``) plus the model-lifecycle wiring.  Output is bitwise-identical
to the pre-pipeline monolith — pinned by ``tests/serving/test_pipeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.world import RequestContext, SyntheticWorld
from ..models.base import BaseCTRModel
from .encoder import OnlineRequestEncoder
from .pipeline import PipelineConfig, ServeResponse, StageMetrics, build_pipeline
from .ranker import Ranker, hot_swap
from .recall import MultiChannelRecall
from .recall.base import RecallStrategy
from .state import ServingState

__all__ = ["ServedImpression", "PersonalizationPlatform"]


@dataclass
class ServedImpression:
    """What one serving round returned: items in display order with scores."""

    context: RequestContext
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(len(self.items))


class PersonalizationPlatform:
    """TPP analog: a backward-compatible facade over the serving pipeline."""

    def __init__(
        self,
        world: SyntheticWorld,
        model: BaseCTRModel,
        encoder: OnlineRequestEncoder,
        state: ServingState,
        recall_size: int = 30,
        exposure_size: int = 10,
        seed: int = 3,
        recall: Optional[RecallStrategy] = None,
    ) -> None:
        self.world = world
        self.state = state
        self.encoder = encoder
        self.ranker = Ranker(model, encoder)
        #: The Recall stage's strategy.  Defaults to the fused multi-channel
        #: subsystem (geo grid + popularity + user history + embedding-ANN
        #: over the serving model's item vectors); pass ``recall=`` — e.g.
        #: the seed :class:`repro.serving.recall.LocationBasedRecall` — to
        #: pin a different retrieval strategy (benchmarks reproducing the
        #: paper's location-based-service setup do this).
        self.recall = recall if recall is not None else MultiChannelRecall.build(
            world, state, encoder=encoder, model=model,
            pool_size=recall_size, seed=seed,
        )
        #: The stage graph every request flows through; consumers that want
        #: telemetry, rerank rules or scenario variants use it directly.
        self.pipeline = build_pipeline(
            world, model, encoder, state,
            PipelineConfig(scenario="platform", exposure_size=exposure_size),
            recall=self.recall, ranker=self.ranker,
        )
        self._rank_stage = self.pipeline.stage("rank")

    # ------------------------------------------------------------------ #
    @property
    def exposure_size(self) -> int:
        return self._rank_stage.exposure_size

    @exposure_size.setter
    def exposure_size(self, value: int) -> None:
        self._rank_stage.exposure_size = value

    @property
    def metrics(self) -> StageMetrics:
        """Per-stage latency / candidate-count telemetry of the pipeline."""
        return self.pipeline.metrics

    # ------------------------------------------------------------------ #
    def swap_model(self, model: BaseCTRModel) -> BaseCTRModel:
        """Hot-swap the ranking model without dropping the feature cache.

        The lifecycle promotion path: a refreshed checkpoint (usually loaded
        from a :class:`repro.models.store.ModelStore`) replaces the serving
        model between requests.  The new model must speak the same feature
        schema as the platform's encoder — checked by fingerprint, so an
        incompatible global-id layout fails here rather than mis-scoring
        traffic.  Volatile cache entries (behaviour snapshots) are dropped as
        a conservative promotion policy — see
        :meth:`repro.serving.state.FeatureCache.invalidate_volatile` — while
        pinned static id tables survive the swap untouched.  Returns the
        previous model so callers can roll back.

        When the recall stage carries an embedding-ANN channel, its item
        vectors are re-exported from the incoming model so retrieval and
        ranking stay consistent after the promotion (the synchronous analog
        of a production ANN-index rebuild).
        """
        previous = hot_swap(self.ranker, self.encoder.schema, self.state.features, model)
        refresh = getattr(self.recall, "refresh_embeddings", None)
        if refresh is not None:
            refresh(model, self.encoder)
        return previous

    # ------------------------------------------------------------------ #
    @staticmethod
    def _impression(response: ServeResponse) -> ServedImpression:
        return ServedImpression(
            context=response.context, items=response.items, scores=response.scores
        )

    def serve(self, context: RequestContext) -> ServedImpression:
        """Handle one request end-to-end and return the exposed items."""
        return self._impression(self.pipeline.run(context))

    def serve_many(self, contexts: List[RequestContext]) -> List[ServedImpression]:
        """Handle a burst of concurrent requests through the batched engine.

        Same stage graph as :meth:`serve` — the rank stage packs all requests
        into micro-batches so the model runs one forward pass per batch, and
        per-request deterministic recall keeps the pools identical to what
        sequential :meth:`serve` calls would produce.
        """
        return [self._impression(r) for r in self.pipeline.run_many(contexts)]

    def feedback(self, impression: ServedImpression, clicks: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Report observed clicks back so user/item state stays current.

        Routed through the pipeline's :class:`ExposureLogStage`, which
        reaches :meth:`repro.serving.state.ServingState.record_clicks` — and
        therefore any attached :class:`repro.serving.replay.ReplayBuffer` —
        exactly as the pre-pipeline direct call did.
        """
        self.pipeline.feedback(impression, clicks, rng=rng)
