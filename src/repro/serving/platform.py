"""End-to-end serving pipeline (the paper's Fig. 13 deployment diagram).

``PersonalizationPlatform`` plays the role of TPP: on a user request it asks
the feature server (our :class:`ServingState` + :class:`OnlineRequestEncoder`,
standing in for ABFS) for user features and behaviours, recalls candidates
with the location-based service, sends everything to the ranker (RTP) and
returns the top-k items for exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.world import RequestContext, SyntheticWorld
from ..models.base import BaseCTRModel
from .batching import ScoreRequest
from .encoder import OnlineRequestEncoder
from .ranker import Ranker, hot_swap
from .recall import MultiChannelRecall
from .state import ServingState

__all__ = ["ServedImpression", "PersonalizationPlatform"]


@dataclass
class ServedImpression:
    """What one serving round returned: items in display order with scores."""

    context: RequestContext
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(len(self.items))


class PersonalizationPlatform:
    """TPP analog orchestrating recall -> feature assembly -> ranking."""

    def __init__(
        self,
        world: SyntheticWorld,
        model: BaseCTRModel,
        encoder: OnlineRequestEncoder,
        state: ServingState,
        recall_size: int = 30,
        exposure_size: int = 10,
        seed: int = 3,
        recall=None,
    ) -> None:
        self.world = world
        self.state = state
        self.encoder = encoder
        self.ranker = Ranker(model, encoder)
        #: The Recall stage.  Defaults to the fused multi-channel subsystem
        #: (geo grid + popularity + user history + embedding-ANN over the
        #: serving model's item vectors); pass ``recall=`` — e.g. the seed
        #: :class:`repro.serving.recall.LocationBasedRecall` — to pin a
        #: different retrieval strategy (benchmarks reproducing the paper's
        #: location-based-service setup do this).
        self.recall = recall if recall is not None else MultiChannelRecall.build(
            world, state, encoder=encoder, model=model,
            pool_size=recall_size, seed=seed,
        )
        self.exposure_size = exposure_size

    def swap_model(self, model: BaseCTRModel) -> BaseCTRModel:
        """Hot-swap the ranking model without dropping the feature cache.

        The lifecycle promotion path: a refreshed checkpoint (usually loaded
        from a :class:`repro.models.store.ModelStore`) replaces the serving
        model between requests.  The new model must speak the same feature
        schema as the platform's encoder — checked by fingerprint, so an
        incompatible global-id layout fails here rather than mis-scoring
        traffic.  Volatile cache entries (behaviour snapshots) are dropped as
        a conservative promotion policy — see
        :meth:`repro.serving.state.FeatureCache.invalidate_volatile` — while
        pinned static id tables survive the swap untouched.  Returns the
        previous model so callers can roll back.

        When the recall stage carries an embedding-ANN channel, its item
        vectors are re-exported from the incoming model so retrieval and
        ranking stay consistent after the promotion (the synchronous analog
        of a production ANN-index rebuild).
        """
        previous = hot_swap(self.ranker, self.encoder.schema, self.state.features, model)
        refresh = getattr(self.recall, "refresh_embeddings", None)
        if refresh is not None:
            refresh(model, self.encoder)
        return previous

    def serve(self, context: RequestContext) -> ServedImpression:
        """Handle one request end-to-end and return the exposed items."""
        candidates = self.recall.recall(context)
        items, scores = self.ranker.rank(context, candidates, self.state, self.exposure_size)
        return ServedImpression(context=context, items=items, scores=scores)

    def serve_many(self, contexts: List[RequestContext]) -> List[ServedImpression]:
        """Handle a burst of concurrent requests through the batched engine.

        Recall still runs per request — it is cheap, and every channel draws
        its randomness from a per-request generator, so the pools here are
        identical to what sequential :meth:`serve` calls would recall — while
        ranking packs all requests into micro-batches so the model runs one
        forward pass per batch instead of one per request.
        """
        requests = [ScoreRequest(context, self.recall.recall(context)) for context in contexts]
        ranked = self.ranker.rank_many(requests, self.state, self.exposure_size)
        return [
            ServedImpression(context=result.context, items=result.items, scores=result.scores)
            for result in ranked
        ]

    def feedback(self, impression: ServedImpression, clicks: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Report observed clicks back so user/item state stays current."""
        self.state.record_clicks(impression.context, impression.items, clicks, rng=rng)
