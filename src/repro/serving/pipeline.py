"""Composable serving pipeline: the orchestration layer of the paper's Fig. 13.

The deployment the paper describes is a *staged* flow — Recall → feature
assembly → Real-Time Prediction → exposure — adapted per spatiotemporal
scenario.  Earlier revisions hard-coded that flow inside
:class:`repro.serving.platform.PersonalizationPlatform`; this module makes it
first-class so every consumer (the platform facade, the A/B simulator, the
load generator, examples) runs the *same* stage graph and anything can be
inserted, measured, or varied per scenario:

* :class:`ServeRequest` / :class:`ServeResponse` — typed envelopes carrying a
  request id and scenario tag through the stages;
* :class:`PipelineStage` — the stage contract (batch-first: a stage processes
  a list of envelopes, so the sequential path is just a batch of one and the
  two paths cannot drift apart);
* concrete stages — :class:`RecallStage`, :class:`RankStage`,
  :class:`RerankStage` (pluggable business rules, e.g.
  :class:`CategoryDiversityRule`), :class:`ExposureLogStage` (the
  feedback/replay hookup);
* :class:`ServingPipeline` — executes the stage graph for one request
  (``run``) or a concurrent burst (``run_many``) while recording per-stage
  telemetry (latency, candidate counts in/out) in a :class:`StageMetrics`
  accumulator;
* :class:`PipelineConfig` + :func:`build_pipeline` — config-driven
  construction of the canonical recall → rank → rerank → exposure graph;
* :class:`ScenarioRouter` — dispatches requests to per-scenario pipeline
  variants (city-tier or daypart-specific recall quotas / exposure sizes),
  the serving-side analog of the paper's scenario adaptation.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from ..data.world import RequestContext, SyntheticWorld
from ..models.base import BaseCTRModel
from .batching import ScoreRequest
from .encoder import OnlineRequestEncoder
from .ranker import Ranker
from .recall import MultiChannelRecall
from .recall.base import RecallStrategy
from .state import ServingState

__all__ = [
    "ServeRequest",
    "ServeResponse",
    "StageMetrics",
    "StageStats",
    "PipelineStage",
    "RecallStage",
    "RankStage",
    "RerankRule",
    "CategoryDiversityRule",
    "RerankStage",
    "ExposureLogStage",
    "ServingPipeline",
    "PipelineConfig",
    "build_pipeline",
    "ScenarioRouter",
]


# ---------------------------------------------------------------------- #
# envelopes
# ---------------------------------------------------------------------- #
def _context_fields(context: RequestContext):
    """A context flattened to plain Python scalars, in constructor order.

    Contexts sampled straight from world arrays carry numpy scalars in their
    fields; normalising here is what makes the envelope reductions (and the
    pipe codec built on the same helpers) independent of the producer.
    """
    return (
        int(context.user_index),
        int(context.day),
        int(context.hour),
        int(context.time_period),
        int(context.city),
        float(context.latitude),
        float(context.longitude),
        str(context.geohash),
    )


def _pack_array(array: Optional[np.ndarray]):
    """``(dtype str, shape, raw bytes)`` or None — a self-describing array."""
    if array is None:
        return None
    array = np.ascontiguousarray(array)
    return (array.dtype.str, tuple(int(dim) for dim in array.shape), array.tobytes())


def _unpack_array(packed) -> Optional[np.ndarray]:
    if packed is None:
        return None
    dtype, shape, raw = packed
    return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()


def _rebuild_serve_request(fields, request_id: str, scenario: str) -> "ServeRequest":
    return ServeRequest(
        context=RequestContext(*fields), request_id=request_id, scenario=scenario
    )


def _rebuild_serve_response(request, candidates, items, scores) -> "ServeResponse":
    return ServeResponse(
        request=request,
        candidates=_unpack_array(candidates),
        items=_unpack_array(items),
        scores=_unpack_array(scores),
    )


@dataclass
class ServeRequest:
    """One serving request as the pipeline sees it.

    ``request_id`` is assigned by the pipeline when empty; ``scenario`` is the
    routing tag — empty means "unrouted" and lets a :class:`ScenarioRouter`
    classify the request from its context.
    """

    context: RequestContext
    request_id: str = ""
    scenario: str = ""

    def __reduce__(self):
        # Default dataclass pickling drags whatever numpy scalar types the
        # context was sampled with across the process boundary; reduce to
        # plain scalars so a request round-trips identically from any source.
        return (
            _rebuild_serve_request,
            (_context_fields(self.context), str(self.request_id), str(self.scenario)),
        )


@dataclass
class ServeResponse:
    """The envelope stages fill in as a request flows through the graph.

    ``candidates`` is the recalled pool (set by :class:`RecallStage`),
    ``items``/``scores`` the exposed list in display order (set by
    :class:`RankStage`, possibly reordered by :class:`RerankStage`).
    """

    request: ServeRequest
    candidates: Optional[np.ndarray] = None
    items: Optional[np.ndarray] = None
    scores: Optional[np.ndarray] = None

    def __reduce__(self):
        return (
            _rebuild_serve_response,
            (
                self.request,
                _pack_array(self.candidates),
                _pack_array(self.items),
                _pack_array(self.scores),
            ),
        )

    @property
    def context(self) -> RequestContext:
        return self.request.context

    @property
    def scenario(self) -> str:
        return self.request.scenario

    def __len__(self) -> int:
        return 0 if self.items is None else int(len(self.items))


def _payload_size(response: ServeResponse) -> int:
    """Candidate-count telemetry: exposed items once ranked, else the pool."""
    if response.items is not None:
        return int(len(response.items))
    if response.candidates is not None:
        return int(len(response.candidates))
    return 0


# ---------------------------------------------------------------------- #
# telemetry
# ---------------------------------------------------------------------- #
@dataclass
class StageStats:
    """Accumulated telemetry of one stage.

    Counters (``calls``/``requests``/``items_*``/``seconds``) are exact
    lifetime totals; ``latencies`` is a bounded window of the most recent
    per-call wall-clock samples, so an always-on pipeline serving millions
    of requests holds O(window) telemetry, not O(traffic).
    """

    calls: int = 0
    requests: int = 0
    items_in: int = 0
    items_out: int = 0
    seconds: float = 0.0
    #: Most recent per-call latencies (seconds), bounded by the metrics window.
    latencies: Deque[float] = field(default_factory=deque)


class StageMetrics:
    """Per-stage latency and candidate-count accumulator.

    One instance can be shared across pipelines (e.g. every scenario variant
    of a router feeding one accumulator) — stages are keyed by name, and
    recording is append-only.  ``max_samples`` bounds the per-stage latency
    window the percentiles are computed over (totals stay exact).
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._stages: Dict[str, StageStats] = {}

    def __len__(self) -> int:
        return len(self._stages)

    def record(self, stage: str, seconds: float, requests: int,
               items_in: int, items_out: int) -> None:
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = StageStats(
                latencies=deque(maxlen=self.max_samples)
            )
        stats.calls += 1
        stats.requests += int(requests)
        stats.items_in += int(items_in)
        stats.items_out += int(items_out)
        stats.seconds += float(seconds)
        stats.latencies.append(float(seconds))

    def stages(self) -> List[str]:
        """Stage names in first-recorded order."""
        return list(self._stages)

    # ------------------------------------------------------------------ #
    def merge(self, other: "StageMetrics") -> "StageMetrics":
        """Fold another accumulator into this one, stage by stage.

        The cluster aggregation primitive: each worker records into its own
        accumulator (no cross-thread contention on the hot path) and the
        frontend merges them into one cluster-wide report.  Counter totals
        add exactly; the bounded latency windows concatenate, keeping the
        newest ``max_samples`` samples per stage.  ``other`` is not modified.

        Merging while ``other``'s worker is still serving is safe (the
        deque transfer is atomic under the GIL) but yields an approximate
        snapshot: counters recorded mid-merge may land in either report.
        Merge after a burst resolves for exact totals.
        """
        for name in other.stages():
            theirs = other.stats(name)
            stats = self._stages.get(name)
            if stats is None:
                stats = self._stages[name] = StageStats(
                    latencies=deque(maxlen=self.max_samples)
                )
            stats.calls += theirs.calls
            stats.requests += theirs.requests
            stats.items_in += theirs.items_in
            stats.items_out += theirs.items_out
            stats.seconds += theirs.seconds
            stats.latencies.extend(theirs.latencies)
        return self

    @classmethod
    def merged(cls, accumulators: Sequence["StageMetrics"],
               max_samples: int = 4096) -> "StageMetrics":
        """One cluster-wide accumulator combining per-worker ones."""
        combined = cls(max_samples=max_samples)
        for accumulator in accumulators:
            combined.merge(accumulator)
        return combined

    def stats(self, stage: str) -> StageStats:
        return self._stages[stage]

    def reset(self) -> None:
        self._stages.clear()

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """A JSON-able dump of every stage — the cross-process wire form.

        Worker processes cannot share an accumulator object with the
        frontend, so they ship this payload over the control pipe and the
        parent rebuilds a :class:`StageMetrics` to merge like any thread
        worker's.
        """
        return {
            "max_samples": self.max_samples,
            "stages": {
                name: {
                    "calls": stats.calls,
                    "requests": stats.requests,
                    "items_in": stats.items_in,
                    "items_out": stats.items_out,
                    "seconds": stats.seconds,
                    "latencies": [float(value) for value in stats.latencies],
                }
                for name, stats in self._stages.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StageMetrics":
        metrics = cls(max_samples=int(payload.get("max_samples", 4096)))
        for name, entry in payload.get("stages", {}).items():
            stats = metrics._stages[name] = StageStats(
                latencies=deque(maxlen=metrics.max_samples)
            )
            stats.calls = int(entry["calls"])
            stats.requests = int(entry["requests"])
            stats.items_in = int(entry["items_in"])
            stats.items_out = int(entry["items_out"])
            stats.seconds = float(entry["seconds"])
            stats.latencies.extend(float(value) for value in entry["latencies"])
        return metrics

    # ------------------------------------------------------------------ #
    def latency_percentiles(self, stage: str,
                            percentiles: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
        """Per-call latency percentiles (seconds) for one stage, e.g. ``p50``."""
        latencies = self._stages[stage].latencies
        if not latencies:
            return {f"p{p:g}": 0.0 for p in percentiles}
        values = np.percentile(np.asarray(latencies, dtype=np.float64), list(percentiles))
        return {f"p{p:g}": float(v) for p, v in zip(percentiles, values)}

    def rows(self) -> List[Dict[str, object]]:
        """One table row per stage (latencies in milliseconds)."""
        rows: List[Dict[str, object]] = []
        for name in self.stages():
            stats = self._stages[name]
            pct = self.latency_percentiles(name)
            rows.append(
                {
                    "Stage": name,
                    "Calls": stats.calls,
                    "Requests": stats.requests,
                    "Items in": stats.items_in,
                    "Items out": stats.items_out,
                    "p50 ms": round(1e3 * pct["p50"], 3),
                    "p95 ms": round(1e3 * pct["p95"], 3),
                    "p99 ms": round(1e3 * pct["p99"], 3),
                }
            )
        return rows

    def summary(self) -> str:
        parts = []
        for name in self.stages():
            stats = self._stages[name]
            pct = self.latency_percentiles(name)
            parts.append(
                f"{name}: {stats.calls} calls, {stats.requests} requests, "
                f"{stats.items_in}->{stats.items_out} items, "
                f"p50 {1e3 * pct['p50']:.2f}ms / p95 {1e3 * pct['p95']:.2f}ms"
            )
        return "; ".join(parts) if parts else "(no stage telemetry recorded)"


# ---------------------------------------------------------------------- #
# stage contract and concrete stages
# ---------------------------------------------------------------------- #
class PipelineStage:
    """One step of the serving graph: transform a batch of envelopes in place.

    The contract is batch-first on purpose: ``ServingPipeline.run`` wraps a
    single request into a one-element batch, so the sequential and the
    micro-batched path execute *identical* stage code — the property behind
    the platform's serve/serve_many bit-parity guarantee.  Stages must
    preserve the batch's length and order, and must not mutate ``state``
    during serving (feedback is the separate :meth:`ExposureLogStage.feedback`
    path).
    """

    #: Stable identifier; telemetry and pipeline validation key on it.
    name = "stage"

    def process(self, batch: Sequence[ServeResponse], state: ServingState) -> None:
        raise NotImplementedError


class RecallStage(PipelineStage):
    """Fill ``candidates`` from a :class:`RecallStrategy`.

    With ``pool_size=None`` the strategy's own configured pool size applies
    (exactly what the pre-pipeline platform did); a scenario variant can
    override it to give, say, dense city tiers a larger pool than sparse
    ones without duplicating the strategy.
    """

    name = "recall"

    def __init__(self, strategy: RecallStrategy, pool_size: Optional[int] = None) -> None:
        if pool_size is not None and pool_size <= 0:
            raise ValueError("pool_size must be positive when given")
        self.strategy = strategy
        self.pool_size = pool_size

    def process(self, batch: Sequence[ServeResponse], state: ServingState) -> None:
        for response in batch:
            if self.pool_size is None:
                response.candidates = self.strategy.recall(response.context)
            else:
                response.candidates = self.strategy.recall(response.context, self.pool_size)


class RankStage(PipelineStage):
    """Score every envelope's pool with the ranker and keep the top-k.

    The whole batch goes into one ``rank_many`` call, so the micro-batched
    RTP engine packs all candidate rows together — one forward pass per
    micro-batch no matter how the requests arrived.
    """

    name = "rank"

    def __init__(self, ranker: Ranker, exposure_size: int) -> None:
        if exposure_size <= 0:
            raise ValueError("exposure_size must be positive")
        self.ranker = ranker
        self.exposure_size = exposure_size

    def process(self, batch: Sequence[ServeResponse], state: ServingState) -> None:
        requests = [
            ScoreRequest(response.context, response.candidates) for response in batch
        ]
        ranked = self.ranker.rank_many(requests, state, self.exposure_size)
        for response, result in zip(batch, ranked):
            response.items = result.items
            response.scores = result.scores


class RerankRule:
    """One pluggable business rule applied by :class:`RerankStage`.

    Rules receive the exposed list in display order and return the adjusted
    ``(items, scores)`` pair.  They must be pure (no state mutation) and
    deterministic — re-running a rule on its own output is a no-op.
    """

    name = "rule"

    def apply(self, items: np.ndarray, scores: np.ndarray,
              context: RequestContext, state: ServingState) -> tuple:
        raise NotImplementedError


class CategoryDiversityRule(RerankRule):
    """Cap how many items of one category appear in the head of the list.

    A classic exposure rule: the score-ordered list is scanned greedily and
    items exceeding ``max_per_category`` are demoted behind the compliant
    ones (``overflow="demote"``, keeps the list length) or removed outright
    (``overflow="drop"``).  Relative order inside each group is preserved,
    so the rule is stable and idempotent.
    """

    name = "category_diversity"

    def __init__(self, world: SyntheticWorld, max_per_category: int,
                 overflow: str = "demote") -> None:
        if max_per_category <= 0:
            raise ValueError("max_per_category must be positive")
        if overflow not in ("demote", "drop"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.world = world
        self.max_per_category = max_per_category
        self.overflow = overflow

    def apply(self, items: np.ndarray, scores: np.ndarray,
              context: RequestContext, state: ServingState) -> tuple:
        counts: Dict[int, int] = {}
        kept: List[int] = []
        overflow: List[int] = []
        for position, item in enumerate(items):
            category = int(self.world.item_category[int(item)])
            counts[category] = counts.get(category, 0) + 1
            (kept if counts[category] <= self.max_per_category else overflow).append(position)
        if not overflow:
            return items, scores
        order = kept + overflow if self.overflow == "demote" else kept
        return items[order], scores[order]


class RerankStage(PipelineStage):
    """Apply business rules to the exposed list, after model ranking.

    This is the insertion point the monolithic platform never had: exposure
    policies (diversity caps, boosts, compliance filters) plug in here
    without touching recall or the scoring engine.  With no rules the stage
    is an exact pass-through.
    """

    name = "rerank"

    def __init__(self, rules: Sequence[RerankRule] = ()) -> None:
        self.rules = list(rules)

    def process(self, batch: Sequence[ServeResponse], state: ServingState) -> None:
        if not self.rules:
            return
        for response in batch:
            items, scores = response.items, response.scores
            for rule in self.rules:
                items, scores = rule.apply(items, scores, response.context, state)
            response.items, response.scores = items, scores


class ExposureLogStage(PipelineStage):
    """Book exposures at serve time and route click feedback into the state.

    During ``process`` the stage only counts what was exposed (telemetry —
    serving must not mutate state).  The write half is :meth:`feedback`:
    clicks reported for a served response flow through
    :meth:`repro.serving.state.ServingState.record_clicks`, which logs the
    exposure into an attached :class:`repro.serving.replay.ReplayBuffer`
    *before* mutating the user history — the pipeline's hookup to the
    continuous-refresh lifecycle.
    """

    name = "exposure"

    def __init__(self, order_probability: float = 0.3) -> None:
        self.order_probability = order_probability
        self.exposures_logged = 0
        self.feedbacks_logged = 0
        self.clicks_logged = 0

    def process(self, batch: Sequence[ServeResponse], state: ServingState) -> None:
        self.exposures_logged += int(sum(len(response) for response in batch))

    def feedback(self, state: ServingState, response: "ServeResponse | object",
                 clicks: np.ndarray, rng: Optional[np.random.Generator] = None) -> None:
        """Apply click feedback for one served response (or impression)."""
        clicks = np.asarray(clicks)
        self.feedbacks_logged += 1
        self.clicks_logged += int((clicks > 0).sum())
        state.record_clicks(
            response.context, response.items, clicks,
            order_probability=self.order_probability, rng=rng,
        )


# ---------------------------------------------------------------------- #
# the pipeline executor
# ---------------------------------------------------------------------- #
class ServingPipeline:
    """Execute a stage graph for single requests and concurrent bursts alike.

    ``run`` is literally ``run_many`` on a batch of one — both paths share
    every line of stage code, which is what upgrades the engine-level
    bit-parity guarantee (batched scoring equals sequential scoring) to the
    whole serving flow.  Each stage transition is timed and booked into the
    pipeline's :class:`StageMetrics`.
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        state: ServingState,
        metrics: Optional[StageMetrics] = None,
        name: str = "default",
        order_probability: float = 0.3,
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.state = state
        self.metrics = metrics if metrics is not None else StageMetrics()
        self.name = name
        #: Order-simulation probability used by the :meth:`feedback` fallback
        #: when no :class:`ExposureLogStage` is present (a stage's own
        #: configured value wins otherwise).
        self.order_probability = order_probability
        self._served = 0
        exposure_stages = [s for s in self.stages if isinstance(s, ExposureLogStage)]
        self._exposure_stage = exposure_stages[0] if exposure_stages else None

    # ------------------------------------------------------------------ #
    def stage(self, name: str) -> PipelineStage:
        """Look a stage up by name (raises ``KeyError`` when absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"pipeline {self.name!r} has no stage {name!r}")

    def _as_request(self, request: Union[ServeRequest, RequestContext]) -> ServeRequest:
        """Normalise the input envelope without mutating the caller's object."""
        if isinstance(request, RequestContext):
            request = ServeRequest(context=request)
        request_id = request.request_id or f"{self.name}-{self._served}"
        scenario = request.scenario or self.name
        if request_id != request.request_id or scenario != request.scenario:
            request = replace(request, request_id=request_id, scenario=scenario)
        self._served += 1
        return request

    # ------------------------------------------------------------------ #
    def run(self, request: Union[ServeRequest, RequestContext]) -> ServeResponse:
        """Serve one request through the full stage graph."""
        return self.run_many([request])[0]

    def run_many(
        self, requests: Sequence[Union[ServeRequest, RequestContext]]
    ) -> List[ServeResponse]:
        """Serve a burst of concurrent requests through the same stage graph."""
        responses = [ServeResponse(request=self._as_request(item)) for item in requests]
        if not responses:
            return []
        for stage in self.stages:
            items_in = sum(_payload_size(response) for response in responses)
            start = time.perf_counter()
            stage.process(responses, self.state)
            elapsed = time.perf_counter() - start
            items_out = sum(_payload_size(response) for response in responses)
            self.metrics.record(stage.name, elapsed, len(responses), items_in, items_out)
        return responses

    # ------------------------------------------------------------------ #
    def feedback(self, response: "ServeResponse | object", clicks: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Report observed clicks for a served response (or legacy impression).

        Routed through the pipeline's :class:`ExposureLogStage` when present
        (replay logging, order simulation with the stage's configured
        probability); without one the state is updated directly, preserving
        the pre-pipeline behaviour.
        """
        if self._exposure_stage is not None:
            self._exposure_stage.feedback(self.state, response, clicks, rng=rng)
        else:
            self.state.record_clicks(
                response.context, response.items, clicks,
                order_probability=self.order_probability, rng=rng,
            )


# ---------------------------------------------------------------------- #
# config-driven construction
# ---------------------------------------------------------------------- #
@dataclass
class PipelineConfig:
    """Declarative description of one pipeline variant.

    A :class:`ScenarioRouter` setup is just a dict of these — one per
    spatiotemporal scenario (daypart, city tier, campaign) — differing in
    recall pool size, channel quotas, exposure size, or rerank policy.
    """

    scenario: str = "default"
    recall_size: int = 30
    exposure_size: int = 10
    #: Relative per-channel quota weights for the fused recall stage
    #: (ignored when an explicit ``recall`` strategy is supplied).
    recall_quotas: Optional[Dict[str, float]] = None
    #: Head cap for :class:`CategoryDiversityRule`; ``None`` disables the
    #: rerank stage entirely (exact pass-through of the ranked list).
    max_per_category: Optional[int] = None
    rerank_overflow: str = "demote"
    #: Include the exposure/feedback stage (replay hookup).
    log_exposures: bool = True
    order_probability: float = 0.3
    seed: int = 3


def build_pipeline(
    world: SyntheticWorld,
    model: BaseCTRModel,
    encoder: OnlineRequestEncoder,
    state: ServingState,
    config: Optional[PipelineConfig] = None,
    recall: Optional[RecallStrategy] = None,
    ranker: Optional[Ranker] = None,
    metrics: Optional[StageMetrics] = None,
) -> ServingPipeline:
    """Construct the canonical recall → rank [→ rerank] → exposure pipeline.

    ``recall``/``ranker`` may be supplied to share a stage across pipelines
    (the A/B simulator shares one recall stage between buckets; the platform
    reuses its ranker for hot-swap); otherwise the default fused
    multi-channel recall (quota-weighted per ``config.recall_quotas``) and a
    fresh ranker are built.  A supplied ``recall`` keeps its own configured
    pool size, exactly like the pre-pipeline platform did.
    """
    config = config or PipelineConfig()
    if recall is None:
        recall = MultiChannelRecall.build(
            world, state, encoder=encoder, model=model,
            pool_size=config.recall_size, quotas=config.recall_quotas,
            seed=config.seed,
        )
    if ranker is None:
        ranker = Ranker(model, encoder)
    stages: List[PipelineStage] = [
        RecallStage(recall),
        RankStage(ranker, config.exposure_size),
    ]
    if config.max_per_category is not None:
        stages.append(
            RerankStage([
                CategoryDiversityRule(
                    world, config.max_per_category, overflow=config.rerank_overflow
                )
            ])
        )
    if config.log_exposures:
        stages.append(ExposureLogStage(order_probability=config.order_probability))
    return ServingPipeline(
        stages, state, metrics=metrics, name=config.scenario,
        order_probability=config.order_probability,
    )


# ---------------------------------------------------------------------- #
# scenario routing
# ---------------------------------------------------------------------- #
class ScenarioRouter:
    """Dispatch requests to per-scenario pipeline variants.

    The serving-side analog of the paper's scenario adaptation: one pipeline
    per spatiotemporal scenario (breakfast vs. late-night dayparts, dense vs.
    sparse city tiers, an experiment bucket…), selected per request.  An
    explicit non-empty ``ServeRequest.scenario`` tag wins; otherwise the
    ``classifier`` derives the tag from the request context; otherwise the
    ``default`` scenario serves the request.  ``run_many`` groups a mixed
    burst by scenario, runs each group through its pipeline's micro-batched
    path, and returns responses in input order.

    ``unknown_tag`` picks the policy for an explicit tag with no pipeline:
    ``"raise"`` (the default — a typo'd tag fails loudly instead of silently
    serving the wrong variant) or ``"fallback"`` (degrade like an untagged
    request: classifier first, then the default scenario — the lenient mode
    for traffic from callers deploying new tags ahead of the router).
    """

    def __init__(
        self,
        pipelines: Dict[str, ServingPipeline],
        default: Optional[str] = None,
        classifier: Optional[Callable[[RequestContext], str]] = None,
        unknown_tag: str = "raise",
    ) -> None:
        if not pipelines:
            raise ValueError("a router needs at least one pipeline")
        if unknown_tag not in ("raise", "fallback"):
            raise ValueError(f"unknown_tag must be 'raise' or 'fallback', got {unknown_tag!r}")
        self.pipelines = dict(pipelines)
        if default is None:
            default = next(iter(self.pipelines))
        if default not in self.pipelines:
            raise ValueError(f"default scenario {default!r} has no pipeline")
        self.default = default
        self.classifier = classifier
        self.unknown_tag = unknown_tag

    # ------------------------------------------------------------------ #
    def scenario_of(self, request: Union[ServeRequest, RequestContext]) -> str:
        """Resolve which scenario serves this request (validated)."""
        if isinstance(request, RequestContext):
            request = ServeRequest(context=request)
        scenario = request.scenario
        if scenario and scenario not in self.pipelines and self.unknown_tag == "fallback":
            scenario = ""  # degrade to the untagged path: classifier, then default
        if not scenario and self.classifier is not None:
            scenario = self.classifier(request.context)
            if scenario not in self.pipelines and self.unknown_tag == "fallback":
                scenario = ""
        if not scenario:
            scenario = self.default
        if scenario not in self.pipelines:
            raise ValueError(
                f"no pipeline for scenario {scenario!r} "
                f"(known: {sorted(self.pipelines)})"
            )
        return scenario

    def pipeline_for(self, request: Union[ServeRequest, RequestContext]) -> ServingPipeline:
        return self.pipelines[self.scenario_of(request)]

    # ------------------------------------------------------------------ #
    def run(self, request: Union[ServeRequest, RequestContext]) -> ServeResponse:
        return self.run_many([request])[0]

    def run_many(
        self, requests: Sequence[Union[ServeRequest, RequestContext]]
    ) -> List[ServeResponse]:
        """Serve a mixed burst, grouped per scenario, in input order."""
        normalized = []
        groups: Dict[str, List[int]] = {}
        for index, item in enumerate(requests):
            request = ServeRequest(context=item) if isinstance(item, RequestContext) else item
            scenario = self.scenario_of(request)
            if request.scenario != scenario:
                # Carry the resolved tag on a copy — the caller's envelope is
                # left untouched, so replaying it (or re-routing it with a
                # different classifier) re-resolves instead of honouring a
                # stale tag.
                request = replace(request, scenario=scenario)
            normalized.append(request)
            groups.setdefault(scenario, []).append(index)
        responses: List[Optional[ServeResponse]] = [None] * len(normalized)
        for scenario, members in groups.items():
            served = self.pipelines[scenario].run_many([normalized[i] for i in members])
            for index, response in zip(members, served):
                responses[index] = response
        return responses  # type: ignore[return-value]

    def feedback(self, response: ServeResponse, clicks: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Route click feedback to the pipeline that served the response."""
        self.pipelines[self.scenario_of(response.request)].feedback(
            response, clicks, rng=rng
        )
