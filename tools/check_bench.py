#!/usr/bin/env python
"""Benchmark regression harness: compare ``results/BENCH_*.json`` to baselines.

Benchmarks persist their headline numbers as machine-readable JSON
(``save_bench_json`` in ``benchmarks/conftest.py``).  This tool compares
them against the committed tolerance bands in ``benchmarks/baselines.json``,
so serving-throughput, lifecycle-drift and recall-quality numbers cannot
silently regress: CI runs it right after the benchmark suite.

``baselines.json`` maps ``benchmark name -> metric name -> band``, where a
band is any combination of:

* ``min`` / ``max`` — hard floors/ceilings (the usual choice for timing
  ratios, which vary machine to machine);
* ``baseline`` with ``rel_tol`` and/or ``abs_tol`` — a two-sided band
  around an expected value: ``|value - baseline| <= abs_tol +
  rel_tol * |baseline|`` (the choice for statistical quality metrics).

Metrics present in a results file but absent from the baselines are
ignored (informational only).  A baselined metric whose results file or
key is missing is a failure — a deleted benchmark cannot silently take its
regression guard with it — unless ``--allow-missing`` is given (useful for
checking a partial local run).  A band carrying ``"optional": true`` is
the exception: its metric may legitimately be absent (a host-conditional
measurement, e.g. a multi-core speedup a single-core runner cannot
produce), so absence is skipped — but when the metric *is* present the
band is enforced like any other.

Exit code 0 when every band holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines.json"
DEFAULT_RESULTS = REPO_ROOT / "results"


def check_band(value: float, band: dict) -> List[str]:
    """Return a list of violation descriptions (empty when inside the band)."""
    problems = []
    if "min" in band and value < band["min"]:
        problems.append(f"value {value:g} below min {band['min']:g}")
    if "max" in band and value > band["max"]:
        problems.append(f"value {value:g} above max {band['max']:g}")
    if "baseline" in band:
        baseline = band["baseline"]
        allowed = band.get("abs_tol", 0.0) + band.get("rel_tol", 0.0) * abs(baseline)
        if abs(value - baseline) > allowed:
            problems.append(
                f"value {value:g} outside baseline {baseline:g} ± {allowed:g}"
            )
    return problems


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES)
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="skip baselined benchmarks/metrics with no results instead of failing",
    )
    arguments = parser.parse_args(argv)

    baselines = json.loads(arguments.baselines.read_text(encoding="utf-8"))
    failures = 0
    checked = 0
    for benchmark, bands in sorted(baselines.items()):
        results_path = arguments.results / f"BENCH_{benchmark}.json"
        if not results_path.exists():
            if arguments.allow_missing:
                print(f"SKIP {benchmark}: no {results_path.name}")
                continue
            print(f"FAIL {benchmark}: missing {results_path} (run the benchmarks first)")
            failures += 1
            continue
        metrics = json.loads(results_path.read_text(encoding="utf-8"))["metrics"]
        for metric, band in sorted(bands.items()):
            if metric not in metrics:
                if band.get("optional"):
                    print(f"SKIP {benchmark}.{metric}: optional metric not measured")
                    continue
                if arguments.allow_missing:
                    print(f"SKIP {benchmark}.{metric}: not in results")
                    continue
                print(f"FAIL {benchmark}.{metric}: metric missing from {results_path.name}")
                failures += 1
                continue
            checked += 1
            problems = check_band(float(metrics[metric]), band)
            if problems:
                for problem in problems:
                    print(f"FAIL {benchmark}.{metric}: {problem}")
                failures += len(problems)
            else:
                print(f"ok   {benchmark}.{metric} = {metrics[metric]:g}")
    if failures:
        print(f"\n{failures} benchmark regression(s).")
        return 1
    print(f"\nbench check OK ({checked} metric(s) within tolerance).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
