#!/usr/bin/env python
"""Cheap docs check: every module reference in the docs must exist.

Scans markdown files (by default ``docs/ARCHITECTURE.md`` and ``README.md``)
for two kinds of references and fails if any points at nothing:

* repository paths like ``src/repro/serving/platform.py`` (or directories
  like ``src/repro/nn``, ``benchmarks/``);
* dotted module references like ``repro.serving.batching`` or
  ``repro.models.store.ModelStore`` — resolved against ``src/`` by finding
  the longest prefix that is a module file or package directory.

Run from anywhere: paths are resolved relative to the repository root.
Exit code 0 when clean, 1 with a listing of dangling references otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_DOCS = ("docs/ARCHITECTURE.md", "README.md")

_PATH_PATTERN = re.compile(
    r"\b(?:src|tests|benchmarks|examples|docs|tools)/[A-Za-z0-9_\-./]*[A-Za-z0-9_\-/]"
)
_MODULE_PATTERN = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+(\()?")


def _path_exists(reference: str) -> bool:
    return (REPO_ROOT / reference.rstrip("/")).exists()


def _is_module(parts: List[str]) -> bool:
    candidate = Path("src", *parts)
    return (
        (REPO_ROOT / candidate).with_suffix(".py").exists()
        or (REPO_ROOT / candidate / "__init__.py").exists()
    )


def _module_exists(reference: str, is_call: bool) -> bool:
    """True when the reference's full module part resolves under ``src/``.

    Trailing ``CamelCase`` components are treated as a class/attribute chain
    (``repro.models.store.ModelStore`` → module ``repro.models.store``), and
    a trailing call like ``repro.models.available_models()`` drops its last
    component.  Every remaining — lowercase — component must be part of an
    actual module path, so a dangling leaf (``repro.serving.replayX``) fails
    even though its package prefix exists.
    """
    parts = reference.split(".")
    if is_call:
        parts = parts[:-1]
    while len(parts) > 1 and parts[-1][:1].isupper():
        parts = parts[:-1]
    return len(parts) >= 1 and _is_module(parts)


def check_file(path: Path) -> List[Tuple[int, str]]:
    """Return (line number, reference) for every dangling reference."""
    dangling: List[Tuple[int, str]] = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in _PATH_PATTERN.finditer(line):
            if not _path_exists(match.group(0)):
                dangling.append((line_number, match.group(0)))
        for match in _MODULE_PATTERN.finditer(line):
            reference = match.group(0).rstrip("(")
            if not _module_exists(reference, is_call=match.group(1) is not None):
                dangling.append((line_number, reference))
    return dangling


def main(arguments: Iterable[str]) -> int:
    documents = list(arguments) or list(DEFAULT_DOCS)
    failures = 0
    for name in documents:
        path = REPO_ROOT / name
        if not path.exists():
            print(f"MISSING DOC: {name}")
            failures += 1
            continue
        for line_number, reference in check_file(path):
            print(f"{name}:{line_number}: dangling reference {reference!r}")
            failures += 1
    if failures:
        print(f"\n{failures} dangling reference(s).")
        return 1
    print(f"docs check OK ({', '.join(documents)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
